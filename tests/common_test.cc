// Unit tests for src/common: status/result, rng, crc32c, serde (including the
// section-7 robustness property: decoding arbitrary bytes never crashes), uuid,
// coverage counters.

#include <gtest/gtest.h>

#include <set>

#include "src/common/bytes.h"
#include "src/common/cover.h"
#include "src/common/crc32c.h"
#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/common/status.h"
#include "src/common/uuid.h"

namespace ss {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, CodesAndMessages) {
  Status status = Status::Corruption("bad trailing uuid");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_EQ(status.ToString(), "Corruption: bad trailing uuid");
}

TEST(Status, EqualityIsByCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_NE(Status::NotFound(), Status::Corruption());
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= 7; ++c) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(Result, ValueAndError) {
  Result<int> ok_result = 42;
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 42);
  EXPECT_EQ(ok_result.value_or(7), 42);

  Result<int> err_result = Status::IoError("boom");
  ASSERT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.code(), StatusCode::kIoError);
  EXPECT_EQ(err_result.value_or(7), 7);
}

Result<int> HelperReturnsDouble(Result<int> input) {
  SS_ASSIGN_OR_RETURN(int v, input);
  return v * 2;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(HelperReturnsDouble(21).value(), 42);
  EXPECT_EQ(HelperReturnsDouble(Status::NotFound()).code(), StatusCode::kNotFound);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.Next() == b.Next()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(10), 10u);
  }
  EXPECT_EQ(rng.Below(0), 0u);
  EXPECT_EQ(rng.Below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.Range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, RangeSignedHandlesNegatives) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    const int64_t v = rng.RangeSigned(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.Chance(0.0));
  EXPECT_TRUE(rng.Chance(1.0));
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    hits += rng.Chance(0.25) ? 1 : 0;
  }
  EXPECT_GT(hits, 2100);
  EXPECT_LT(hits, 2900);
}

TEST(Rng, WeightedIndexZeroWeightNeverPicked) {
  Rng rng(19);
  std::vector<uint32_t> weights = {0, 5, 0, 5};
  for (int i = 0; i < 500; ++i) {
    const size_t pick = rng.WeightedIndex(weights);
    EXPECT_TRUE(pick == 1 || pick == 3);
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Split();
  EXPECT_NE(a.Next(), child.Next());
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  Bytes zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // 32 bytes of 0xff.
  Bytes ones(32, 0xff);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
}

TEST(Crc32c, Chaining) {
  Bytes data = BytesOf("hello world");
  const uint32_t whole = Crc32c(data.data(), data.size());
  const uint32_t part1 = Crc32c(data.data(), 5);
  const uint32_t chained = Crc32c(data.data() + 5, data.size() - 5, part1);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32c, DetectsSingleBitFlip) {
  Bytes data = BytesOf("some payload bytes");
  const uint32_t original = Crc32c(data.data(), data.size());
  data[4] ^= 0x01;
  EXPECT_NE(original, Crc32c(data.data(), data.size()));
}

TEST(Uuid, RandomIsDeterministicPerSeed) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(Uuid::Random(a), Uuid::Random(b));
}

TEST(Uuid, ZeroAndToString) {
  EXPECT_EQ(Uuid::Zero().ToString(), std::string(32, '0'));
  Rng rng(6);
  EXPECT_EQ(Uuid::Random(rng).ToString().size(), 32u);
}

TEST(Serde, RoundTripAllTypes) {
  Rng rng(31);
  Writer w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  const Uuid uuid = Uuid::Random(rng);
  w.PutUuid(uuid);
  w.PutBlob(BytesOf("blob contents"));
  w.PutRaw(BytesOf("raw"));

  Reader r(w.bytes());
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetU16().value(), 0x1234);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetUuid().value(), uuid);
  EXPECT_EQ(r.GetBlob().value(), BytesOf("blob contents"));
  EXPECT_EQ(r.GetRaw(3).value(), BytesOf("raw"));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serde, TruncatedInputIsCorruptionNotCrash) {
  Bytes short_input = {0x01, 0x02};
  Reader r(short_input);
  EXPECT_EQ(r.GetU32().code(), StatusCode::kCorruption);
  EXPECT_EQ(r.GetU64().code(), StatusCode::kCorruption);
}

TEST(Serde, BlobLengthBeyondInputIsCorruption) {
  Writer w;
  w.PutU32(1000);  // claims 1000 bytes follow
  w.PutRaw(BytesOf("only a few"));
  Reader r(w.bytes());
  EXPECT_EQ(r.GetBlob().code(), StatusCode::kCorruption);
}

TEST(Serde, BlobLengthBoundRejectsHugeClaims) {
  Writer w;
  w.PutU32(0xffffffffu);
  Reader r(w.bytes());
  EXPECT_EQ(r.GetBlob(/*max_len=*/1024).code(), StatusCode::kCorruption);
}

// Section 7 robustness property: feeding arbitrary bytes through every reader method
// never crashes — failures are always Status values. (The analogue of the paper's
// Crux-verified panic-freedom, checked dynamically.)
class SerdeFuzz : public testing::TestWithParam<uint64_t> {};

TEST_P(SerdeFuzz, ArbitraryBytesNeverCrash) {
  Rng rng(GetParam());
  for (int round = 0; round < 200; ++round) {
    Bytes junk(rng.Below(64));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.Below(256));
    }
    Reader r(junk);
    while (!r.AtEnd()) {
      switch (rng.Below(6)) {
        case 0:
          (void)r.GetU8();
          break;
        case 1:
          (void)r.GetU16();
          break;
        case 2:
          (void)r.GetU32();
          break;
        case 3:
          (void)r.GetU64();
          break;
        case 4:
          (void)r.GetUuid();
          break;
        default:
          if (!r.GetBlob(4096).ok()) {
            // Corrupt length prefix: stop consuming this buffer.
            goto next_round;
          }
          break;
      }
    }
  next_round:;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerdeFuzz, testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Coverage, CountsHits) {
  Coverage::Global().Reset();
  SS_COVER("test.site");
  SS_COVER("test.site");
  EXPECT_EQ(Coverage::Global().Count("test.site"), 2u);
  EXPECT_EQ(Coverage::Global().Count("test.never"), 0u);
  Coverage::Global().Reset();
  EXPECT_EQ(Coverage::Global().Count("test.site"), 0u);
}

TEST(Bytes, HexDumpTruncates) {
  Bytes data(100, 0xaa);
  const std::string dump = HexDump(data, 4);
  EXPECT_EQ(dump, "aa aa aa aa ...");
}

}  // namespace
}  // namespace ss
