// Cluster-tier tests: ring placement and rebalance bounds, quorum
// success/degraded/failed paths, read-repair convergence, hinted handoff, the
// failure-detector ladder, membership rebalancing under partitions, the shared
// RetryPolicy, the PBT fault storm, seeded bug #17, and the model-checked cross-node
// linearizability properties (including the R+W<=N stale-read counterexample and its
// replayable flight artifact).

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>

#include "src/cluster/coordinator.h"
#include "src/common/retry_policy.h"
#include "src/faults/faults.h"
#include "src/harness/cluster_harness.h"
#include "src/mc/mc.h"
#include "src/obs/cluster_trace.h"
#include "src/obs/flight_recorder.h"
#include "src/sync/sync.h"

namespace ss {
namespace {

using cluster::ClusterCoordinator;
using cluster::ClusterNet;
using cluster::ClusterOptions;
using cluster::HashRing;
using cluster::NodeHealth;
using cluster::QuorumOutcome;
using cluster::QuorumResult;
using cluster::ReplicaRecord;

ClusterOptions SmallOptions(int nodes = 3) {
  ClusterOptions options;
  options.initial_nodes = nodes;
  options.replication = 3;
  options.read_quorum = 2;
  options.write_quorum = 2;
  options.vnodes = 8;
  options.node.disk_count = 1;
  options.node.geometry = DiskGeometry{.extent_count = 16, .pages_per_extent = 16,
                                       .page_size = 256};
  return options;
}

std::unique_ptr<ClusterCoordinator> MakeCluster(const ClusterOptions& options) {
  auto cluster_or = ClusterCoordinator::Create(options);
  EXPECT_TRUE(cluster_or.ok()) << cluster_or.status().ToString();
  return std::move(cluster_or).value();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// --- Ring placement -------------------------------------------------------------------

TEST(HashRing, SpreadsKeysAcrossMembers) {
  HashRing ring(32);
  for (int n = 0; n < 5; ++n) {
    ring.AddNode(n);
  }
  std::map<int, int> primaries;
  const int kKeys = 2000;
  for (uint64_t key = 0; key < kKeys; ++key) {
    primaries[ring.Owners(key, 1).front()]++;
  }
  for (int n = 0; n < 5; ++n) {
    // A perfectly even split is 400 per node; virtual nodes keep every member within
    // a loose band of it.
    EXPECT_GT(primaries[n], kKeys / 20) << "node " << n << " nearly starved";
    EXPECT_LT(primaries[n], kKeys / 2) << "node " << n << " dominates the ring";
  }
}

TEST(HashRing, JoinMovesABoundedFractionAndLeaveRestoresIt) {
  HashRing ring(16);
  for (int n = 0; n < 4; ++n) {
    ring.AddNode(n);
  }
  const int kKeys = 500;
  std::map<uint64_t, std::vector<int>> before;
  for (uint64_t key = 0; key < kKeys; ++key) {
    before[key] = ring.Owners(key, 3);
  }
  ring.AddNode(4);
  int moved = 0;
  for (uint64_t key = 0; key < kKeys; ++key) {
    if (ring.Owners(key, 3) != before[key]) {
      ++moved;
    }
  }
  // Adding a fifth member must move some replica sets but nowhere near all of them
  // (the consistent-hashing churn bound; a modulo ring would reshuffle ~everything).
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, (kKeys * 3) / 4) << "join reshuffled most of the keyspace";
  // Removing the node reprojects the identical vnode points, so ownership snaps back
  // exactly — the property NodeLeave's rollback path depends on.
  ring.RemoveNode(4);
  for (uint64_t key = 0; key < kKeys; ++key) {
    EXPECT_EQ(ring.Owners(key, 3), before[key]);
  }
}

// --- Quorum paths ---------------------------------------------------------------------

TEST(ClusterQuorum, CleanWriteReplicatesEverywhereAndTraces) {
  auto cluster = MakeCluster(SmallOptions());
  const Bytes value = BytesOf("clean");
  const QuorumResult put = cluster->Put(5, value);
  ASSERT_TRUE(put.ok()) << put.status.ToString();
  EXPECT_EQ(put.outcome, QuorumOutcome::kOk);
  EXPECT_EQ(put.acks, 3);
  EXPECT_EQ(put.required, 2);
  EXPECT_NE(put.trace_id, 0u);
  for (const int owner : cluster->OwnersOf(5)) {
    auto rec = cluster->DebugReplicaRead(owner, 5).value();
    ASSERT_TRUE(rec.has_value()) << "owner " << owner << " missed the write";
    EXPECT_EQ(rec->value, value);
    EXPECT_FALSE(rec->tombstone);
  }
  const QuorumResult get = cluster->Get(5);
  ASSERT_TRUE(get.ok());
  EXPECT_TRUE(get.found);
  EXPECT_EQ(get.value, value);
  EXPECT_EQ(get.version, put.version);
  // Every client op roots a span tree over the fan-out.
  EXPECT_GE(cluster->spans().total_started(), 2u);
  const auto snap = cluster->MetricsSnapshot();
  EXPECT_EQ(snap.counter("cluster.put.ok"), 1u);
  EXPECT_EQ(snap.counter("cluster.get.ok"), 1u);
}

TEST(ClusterQuorum, DeleteIsATombstoneAndReadsMissing) {
  auto cluster = MakeCluster(SmallOptions());
  ASSERT_TRUE(cluster->Put(9, BytesOf("doomed")).ok());
  const QuorumResult del = cluster->Delete(9);
  ASSERT_TRUE(del.ok()) << del.status.ToString();
  const QuorumResult get = cluster->Get(9);
  EXPECT_EQ(get.status.code(), StatusCode::kNotFound);
  EXPECT_FALSE(get.found);
  // The tombstone still carries the delete's version: that is what keeps a replayed
  // older Put from resurrecting the key.
  EXPECT_EQ(get.version, del.version);
  auto rec = cluster->DebugReplicaRead(cluster->OwnersOf(9).front(), 9).value();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->tombstone);
}

TEST(ClusterQuorum, CrashedReplicaDegradesWritesAndHintsReplay) {
  auto cluster = MakeCluster(SmallOptions());
  const std::vector<int> owners = cluster->OwnersOf(11);
  ASSERT_TRUE(cluster->CrashNode(owners[2]).ok());
  const Bytes value = BytesOf("degraded");
  const QuorumResult put = cluster->Put(11, value);
  ASSERT_TRUE(put.ok()) << put.status.ToString();
  EXPECT_EQ(put.outcome, QuorumOutcome::kDegraded);
  EXPECT_EQ(put.acks, 2);
  EXPECT_EQ(put.hints_stored, 1);
  EXPECT_EQ(cluster->HintCount(), 1u);
  ASSERT_FALSE(cluster->DebugReplicaRead(owners[2], 11).value().has_value());
  // Restart + one maintenance round: the hint replays and the replica converges.
  ASSERT_TRUE(cluster->RestartNode(owners[2]).ok());
  cluster->Tick();
  EXPECT_EQ(cluster->HintCount(), 0u);
  auto rec = cluster->DebugReplicaRead(owners[2], 11).value();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->value, value);
  const auto snap = cluster->MetricsSnapshot();
  EXPECT_EQ(snap.counter("cluster.hints.stored"), 1u);
  EXPECT_EQ(snap.counter("cluster.hints.replayed"), 1u);
}

TEST(ClusterQuorum, LosingTheQuorumFailsTyped) {
  auto cluster = MakeCluster(SmallOptions());
  ASSERT_TRUE(cluster->Put(3, BytesOf("v")).ok());
  const std::vector<int> owners = cluster->OwnersOf(3);
  ASSERT_TRUE(cluster->CrashNode(owners[0]).ok());
  ASSERT_TRUE(cluster->CrashNode(owners[1]).ok());
  const QuorumResult put = cluster->Put(3, BytesOf("w"));
  EXPECT_FALSE(put.ok());
  EXPECT_EQ(put.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(put.outcome, QuorumOutcome::kNoQuorum);
  EXPECT_EQ(put.acks, 1);
  EXPECT_EQ(put.required, 2);
  const QuorumResult get = cluster->Get(3);
  EXPECT_FALSE(get.ok());
  EXPECT_EQ(get.outcome, QuorumOutcome::kNoQuorum);
  EXPECT_GE(cluster->MetricsSnapshot().counter("cluster.quorum.failed"), 2u);
}

TEST(ClusterQuorum, ReadRepairConvergesAStaleReplica) {
  auto cluster = MakeCluster(SmallOptions());
  ASSERT_TRUE(cluster->Put(7, BytesOf("old")).ok());
  const std::vector<int> owners = cluster->OwnersOf(7);
  const int stale = owners[2];
  // Partition the coordinator away from one owner and overwrite: that owner keeps
  // the old version (the miss is hinted, but we never Tick so nothing replays).
  cluster->net().PartitionLink(ClusterNet::kClientId, stale);
  const Bytes newest = BytesOf("new");
  const QuorumResult put = cluster->Put(7, newest);
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put.outcome, QuorumOutcome::kDegraded);
  cluster->net().HealLink(ClusterNet::kClientId, stale);
  ASSERT_EQ(cluster->DebugReplicaRead(stale, 7).value()->value, BytesOf("old"));
  // The rotating read start guarantees the stale owner is contacted within N reads;
  // the read that touches it repairs it in place.
  for (int i = 0; i < 3; ++i) {
    const QuorumResult get = cluster->Get(7);
    ASSERT_TRUE(get.ok());
    EXPECT_EQ(get.value, newest) << "read " << i << " served the stale value";
  }
  EXPECT_EQ(cluster->DebugReplicaRead(stale, 7).value()->value, newest);
  EXPECT_GE(cluster->MetricsSnapshot().counter("cluster.read_repairs"), 1u);
}

TEST(ClusterQuorum, DeliveryDelaysPastTheOpTimeoutAreRetriedThenFail) {
  ClusterOptions options = SmallOptions();
  options.net.base_delay_ticks = 100;  // every delivery blows the 10-tick budget
  options.op_timeout_ticks = 10;
  options.rpc_retry.max_attempts = 2;
  auto cluster = MakeCluster(options);
  const QuorumResult put = cluster->Put(1, BytesOf("late"));
  EXPECT_FALSE(put.ok());
  EXPECT_EQ(put.outcome, QuorumOutcome::kNoQuorum);
  const auto snap = cluster->MetricsSnapshot();
  EXPECT_GE(snap.counter("cluster.rpc.timeouts"), 3u);  // one per owner at least
  EXPECT_GE(snap.counter("cluster.rpc.retries"), 3u);   // each RPC got its retry
}

// --- Cluster-wide tracing -------------------------------------------------------------

TEST(ClusterTrace, QuorumPutAssemblesOneCrossNodeTrace) {
  auto cluster = MakeCluster(SmallOptions());
  const QuorumResult put = cluster->Put(5, BytesOf("traced"));
  ASSERT_TRUE(put.ok());
  ASSERT_NE(put.trace_id, 0u);
  const ClusterTrace trace = cluster->AssembleTrace(put.trace_id);
  EXPECT_EQ(trace.root, put.trace_id);
  ASSERT_TRUE(trace.HasSource("coord"));
  // Every contacted replica contributed node-side spans sharing the one root: the
  // coordinator's entries carry root == trace_id, the node entries point back at it
  // through their remote linkage.
  for (const int owner : cluster->OwnersOf(5)) {
    const std::string source = "node-" + std::to_string(owner);
    EXPECT_TRUE(trace.HasSource(source)) << source << " missing from the trace";
    // A replica write is two node RPCs (version guard read + the put).
    EXPECT_GE(trace.CountFor(source), 2u);
  }
  for (const ClusterTraceEntry& entry : trace.spans) {
    if (entry.source == "coord") {
      EXPECT_EQ(entry.span.root, put.trace_id);
    } else if (entry.span.id == entry.span.root) {
      EXPECT_EQ(entry.span.remote_root, put.trace_id);
      EXPECT_NE(entry.span.remote_parent, 0u);
    }
  }
  // The per-phase spans feed the aggregated latency surface.
  const auto snap = cluster->MetricsSnapshot();
  ASSERT_TRUE(snap.histograms.count("span.cluster.fanout.ticks"));
  ASSERT_TRUE(snap.histograms.count("span.cluster.quorum.wait.ticks"));
  EXPECT_GE(snap.histograms.at("span.cluster.fanout.ticks").count, 1u);
  EXPECT_GE(snap.histograms.at("span.cluster.quorum.wait.ticks").count, 1u);
  // Human rendering tags node lines with their source.
  const std::string rendered = trace.ToString();
  EXPECT_NE(rendered.find("[node-"), std::string::npos) << rendered;
}

TEST(ClusterTrace, QuorumGetTracesOnlyContactedReplicas) {
  auto cluster = MakeCluster(SmallOptions());
  ASSERT_TRUE(cluster->Put(9, BytesOf("v")).ok());
  const QuorumResult get = cluster->Get(9);
  ASSERT_TRUE(get.ok());
  ASSERT_NE(get.trace_id, 0u);
  const ClusterTrace trace = cluster->AssembleTrace(get.trace_id);
  // R=2: the coordinator plus exactly the two contacted owners appear; the third
  // replica was never sent the read and so contributes nothing.
  const std::vector<std::string> sources = trace.Sources();
  ASSERT_EQ(sources.size(), 3u) << trace.ToString();
  EXPECT_EQ(sources.front(), "coord");
  const std::vector<int> owners = cluster->OwnersOf(9);
  for (size_t i = 1; i < sources.size(); ++i) {
    bool is_owner = false;
    for (const int owner : owners) {
      is_owner |= sources[i] == "node-" + std::to_string(owner);
    }
    EXPECT_TRUE(is_owner) << sources[i] << " is not an owner of key 9";
  }
}

TEST(ClusterTrace, PartitionedReplicaIsMissingFromTheAssembledTrace) {
  auto cluster = MakeCluster(SmallOptions());
  const std::vector<int> owners = cluster->OwnersOf(3);
  cluster->net().PartitionLink(ClusterNet::kClientId, owners[1]);
  const QuorumResult put = cluster->Put(3, BytesOf("degraded"));
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put.outcome, QuorumOutcome::kDegraded);
  const ClusterTrace trace = cluster->AssembleTrace(put.trace_id);
  // The dropped message never delivered its TraceContext, so the degraded path is
  // visible as the victim's absence from the assembled trace.
  EXPECT_TRUE(trace.HasSource("node-" + std::to_string(owners[0])));
  EXPECT_TRUE(trace.HasSource("node-" + std::to_string(owners[2])));
  EXPECT_FALSE(trace.HasSource("node-" + std::to_string(owners[1])))
      << "partitioned replica leaked spans into the trace:\n" << trace.ToString();
}

TEST(ClusterTrace, SameMcScheduleAssemblesIdenticalTraces) {
  // Determinism: spans run on the virtual clock and MC serializes the threads, so
  // replaying the same schedule must assemble byte-identical cluster traces.
  auto run = [](std::string* out) {
    auto body = [out] {
      auto cluster_or = ClusterCoordinator::Create(SmallOptions());
      MC_CHECK(cluster_or.ok(), "cluster create failed");
      auto cluster = std::move(cluster_or).value();
      ClusterCoordinator* raw = cluster.get();
      Thread writer = Thread::Spawn([raw] { (void)raw->Put(7, BytesOf("w")); });
      Thread reader = Thread::Spawn([raw] { (void)raw->Get(7); });
      writer.Join();
      reader.Join();
      const QuorumResult last = raw->Put(7, BytesOf("final"));
      MC_CHECK(last.ok(), "final put failed");
      *out = raw->AssembleTrace(last.trace_id).ToJson();
    };
    McResult result = McReplay(body, {});
    ASSERT_TRUE(result.ok) << result.error;
  };
  std::string first;
  std::string second;
  run(&first);
  run(&second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// --- Failure detector -----------------------------------------------------------------

TEST(ClusterFailureDetector, LadderClimbsOnMissesAndRecoversOnHeartbeat) {
  auto cluster = MakeCluster(SmallOptions());
  ASSERT_TRUE(cluster->CrashNode(1).ok());
  cluster->Tick(2);
  EXPECT_EQ(cluster->HealthOf(1), NodeHealth::kSuspect);
  cluster->Tick(2);
  EXPECT_EQ(cluster->HealthOf(1), NodeHealth::kDown);
  ASSERT_TRUE(cluster->RestartNode(1).ok());
  cluster->Tick();
  EXPECT_EQ(cluster->HealthOf(1), NodeHealth::kHealthy);
  const auto snap = cluster->MetricsSnapshot();
  EXPECT_EQ(snap.counter("cluster.fd.suspects"), 1u);
  EXPECT_EQ(snap.counter("cluster.fd.downs"), 1u);
  EXPECT_EQ(snap.counter("cluster.fd.recoveries"), 1u);
  EXPECT_GE(snap.counter("cluster.fd.heartbeats"), 15u);  // 5 rounds x 3 members
}

TEST(ClusterFailureDetector, TransitionCountersTrackAPartitionHealCycle) {
  auto cluster = MakeCluster(SmallOptions());
  // Partition the heartbeat path to node 1: misses climb the ladder without the node
  // itself being down, the steady state of an asymmetric network fault.
  cluster->net().PartitionLink(ClusterNet::kClientId, 1);
  cluster->Tick(2);
  EXPECT_EQ(cluster->HealthOf(1), NodeHealth::kSuspect);
  cluster->Tick(2);
  EXPECT_EQ(cluster->HealthOf(1), NodeHealth::kDown);
  cluster->net().HealLink(ClusterNet::kClientId, 1);
  cluster->Tick();
  EXPECT_EQ(cluster->HealthOf(1), NodeHealth::kHealthy);
  // The detector itself counts every state *entered* (initial membership is not a
  // transition): one suspect, one down, one healthy re-entry across the cycle.
  const auto snap = cluster->MetricsSnapshot();
  EXPECT_EQ(snap.counter("cluster.fd.suspect"), 1u);
  EXPECT_EQ(snap.counter("cluster.fd.down"), 1u);
  EXPECT_EQ(snap.counter("cluster.fd.healthy"), 1u);
}

TEST(ClusterFailureDetector, WritesSkipDownMembersAndHintInstead) {
  auto cluster = MakeCluster(SmallOptions());
  const std::vector<int> owners = cluster->OwnersOf(4);
  ASSERT_TRUE(cluster->CrashNode(owners[1]).ok());
  cluster->Tick(4);  // drive the ladder to kDown
  ASSERT_EQ(cluster->HealthOf(owners[1]), NodeHealth::kDown);
  const auto before = cluster->MetricsSnapshot();
  const QuorumResult put = cluster->Put(4, BytesOf("skip"));
  ASSERT_TRUE(put.ok());
  EXPECT_EQ(put.outcome, QuorumOutcome::kDegraded);
  EXPECT_EQ(put.hints_stored, 1);
  // The down member was never contacted: no delivery was even attempted toward it.
  EXPECT_EQ(put.contacted, 2);
  const auto after = cluster->MetricsSnapshot();
  EXPECT_EQ(CounterDelta(before, after, "cluster.hints.stored"), 1u);
}

// --- Membership -----------------------------------------------------------------------

TEST(ClusterMembership, JoinRebalancesAndKeysStayReadable) {
  auto cluster = MakeCluster(SmallOptions());
  std::map<ShardId, Bytes> contents;
  for (ShardId key = 0; key < 24; ++key) {
    Bytes value = BytesOf("k" + std::to_string(key));
    ASSERT_TRUE(cluster->Put(key, value).ok());
    contents[key] = value;
  }
  ASSERT_TRUE(cluster->NodeJoin(3).ok());
  ASSERT_EQ(cluster->Nodes().size(), 4u);
  EXPECT_EQ(cluster->PendingKeyCount(), 0u);  // no faults: every move was clean
  bool node3_owns_something = false;
  for (const auto& [key, value] : contents) {
    const QuorumResult get = cluster->Get(key);
    ASSERT_TRUE(get.ok()) << "key " << key << ": " << get.status.ToString();
    EXPECT_EQ(get.value, value);
    for (const int owner : cluster->OwnersOf(key)) {
      if (owner == 3) {
        node3_owns_something = true;
        // The rebalance actually copied the data onto the new owner.
        EXPECT_TRUE(cluster->DebugReplicaRead(3, key).value().has_value());
      }
    }
  }
  EXPECT_TRUE(node3_owns_something) << "join moved no keys at all";
  const auto snap = cluster->MetricsSnapshot();
  EXPECT_EQ(snap.counter("cluster.membership.joins"), 1u);
  EXPECT_GT(snap.counter("cluster.rebalance.keys_moved"), 0u);
}

TEST(ClusterMembership, LeaveRefusedWhenRemainderCannotHoldNReplicas) {
  auto cluster = MakeCluster(SmallOptions(3));
  const Status s = cluster->NodeLeave(0);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster->Nodes().size(), 3u);
  EXPECT_EQ(cluster->MetricsSnapshot().counter("cluster.membership.leave_refused"), 1u);
}

TEST(ClusterMembership, LeaveRollsBackWhenRebalanceCannotReadTheLeaver) {
  auto cluster = MakeCluster(SmallOptions(4));
  // Make sure the leaver actually owns data.
  ShardId owned = 0;
  for (ShardId key = 0; key < 64; ++key) {
    const std::vector<int> owners = cluster->OwnersOf(key);
    if (std::find(owners.begin(), owners.end(), 1) != owners.end()) {
      owned = key;
      break;
    }
  }
  ASSERT_TRUE(cluster->Put(owned, BytesOf("survives")).ok());
  // The coordinator cannot read the leaver: the rebalance is dirty, so the leave
  // must refuse and roll the ring back rather than strand the only copies.
  cluster->net().PartitionLink(ClusterNet::kClientId, 1);
  const Status refused = cluster->NodeLeave(1);
  EXPECT_EQ(refused.code(), StatusCode::kUnavailable);
  ASSERT_EQ(cluster->Nodes().size(), 4u);
  EXPECT_TRUE(cluster->ring().Contains(1));
  cluster->net().HealAllLinks();
  // With the fault cleared the same leave commits, and the data survives it.
  ASSERT_TRUE(cluster->NodeLeave(1).ok());
  EXPECT_EQ(cluster->Nodes().size(), 3u);
  const QuorumResult get = cluster->Get(owned);
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.value, BytesOf("survives"));
  const auto snap = cluster->MetricsSnapshot();
  EXPECT_EQ(snap.counter("cluster.membership.leaves"), 1u);
  EXPECT_EQ(snap.counter("cluster.membership.leave_refused"), 1u);
}

TEST(ClusterMembership, PartitionedJoinRecordsPendingMovesAndTickDrainsThem) {
  auto cluster = MakeCluster(SmallOptions(3));
  for (ShardId key = 0; key < 24; ++key) {
    ASSERT_TRUE(cluster->Put(key, BytesOf("v" + std::to_string(key))).ok());
  }
  // With 3 members and N=3 every key lives on node 0, so a join that cannot read
  // node 0 leaves every moved key with a pending source.
  cluster->net().PartitionLink(ClusterNet::kClientId, 0);
  ASSERT_TRUE(cluster->NodeJoin(3).ok());
  ASSERT_GT(cluster->PendingKeyCount(), 0u);
  ShardId pending_key = 0;
  bool found_pending = false;
  for (ShardId key = 0; key < 24 && !found_pending; ++key) {
    const std::vector<int> sources = cluster->PendingSourcesOf(key);
    if (!sources.empty()) {
      EXPECT_EQ(sources, std::vector<int>{0});
      pending_key = key;
      found_pending = true;
    }
  }
  ASSERT_TRUE(found_pending);
  // While the move is pending and its source unreachable, reads of that key must
  // fail rather than risk missing the newest version.
  EXPECT_FALSE(cluster->Get(pending_key).ok());
  // A leave cannot commit over pending moves either.
  EXPECT_EQ(cluster->NodeLeave(2).code(), StatusCode::kUnavailable);
  cluster->net().HealAllLinks();
  cluster->Tick(2);
  EXPECT_EQ(cluster->PendingKeyCount(), 0u);
  const QuorumResult get = cluster->Get(pending_key);
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get.value, BytesOf("v" + std::to_string(pending_key)));
}

// --- Shared retry policy --------------------------------------------------------------

TEST(RetryPolicy, ExponentialBackoffWithCapAndJitterIsDeterministic) {
  common::RetryPolicy plain({.max_attempts = 5, .backoff_base_ticks = 4});
  EXPECT_EQ(plain.BackoffTicks(1), 4u);
  EXPECT_EQ(plain.BackoffTicks(2), 8u);
  EXPECT_EQ(plain.BackoffTicks(3), 16u);
  common::RetryPolicy capped(
      {.max_attempts = 5, .backoff_base_ticks = 4, .max_backoff_ticks = 10});
  EXPECT_EQ(capped.BackoffTicks(2), 8u);
  EXPECT_EQ(capped.BackoffTicks(3), 10u);
  common::RetryPolicy jittered({.max_attempts = 5, .backoff_base_ticks = 100,
                                .jitter = 0.5, .jitter_seed = 7});
  common::RetryPolicy jittered_again({.max_attempts = 5, .backoff_base_ticks = 100,
                                      .jitter = 0.5, .jitter_seed = 7});
  for (uint32_t k = 1; k <= 4; ++k) {
    const uint64_t wait = jittered.BackoffTicks(k);
    // Deterministic: the same (seed, attempt) always draws the same factor.
    EXPECT_EQ(wait, jittered_again.BackoffTicks(k));
    const uint64_t nominal = 100u << (k - 1);
    EXPECT_GE(wait, nominal / 2);
    EXPECT_LE(wait, nominal + nominal / 2);
  }
}

TEST(RetryPolicy, RunRetriesTransientsAndStopsOnBudgets) {
  common::RetryPolicy policy({.max_attempts = 4, .backoff_base_ticks = 2});
  uint64_t charged = 0;
  auto charge = [&charged](uint64_t ticks) { charged += ticks; };
  // Succeeds on the third attempt: two waits charged (2 + 4 ticks).
  auto result = policy.Run(
      [](uint32_t attempt) {
        return attempt < 2 ? Status::IoError("blip") : Status::Ok();
      },
      charge);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_EQ(result.backoff_ticks, 6u);
  EXPECT_EQ(charged, 6u);
  EXPECT_FALSE(result.exhausted);
  // Non-retryable errors stop immediately.
  result = policy.Run([](uint32_t) { return Status::Unavailable("gone"); }, charge);
  EXPECT_EQ(result.attempts, 1u);
  EXPECT_FALSE(result.exhausted);
  // A transient that never clears exhausts the attempt budget.
  result = policy.Run([](uint32_t) { return Status::IoError("always"); }, charge);
  EXPECT_EQ(result.attempts, 4u);
  EXPECT_TRUE(result.exhausted);
  // The total-backoff budget can stop retries before the attempt budget.
  common::RetryPolicy budgeted({.max_attempts = 10, .backoff_base_ticks = 4,
                                .total_backoff_budget_ticks = 10});
  result = budgeted.Run([](uint32_t) { return Status::IoError("always"); }, nullptr);
  EXPECT_TRUE(result.exhausted);
  EXPECT_LT(result.attempts, 10u);
  EXPECT_LE(result.backoff_ticks, 10u);
}

// --- The fault-storm property ---------------------------------------------------------

std::string Describe(const PbtFailure<ClusterOp>& failure) {
  std::string out = failure.message + "\n  minimized:";
  for (const ClusterOp& op : failure.minimized) {
    out += "\n    " + op.ToString();
  }
  return out;
}

class ClusterStormSeeds : public testing::TestWithParam<uint64_t> {
 protected:
  ClusterStormSeeds() { FaultRegistry::Global().DisableAll(); }
};

TEST_P(ClusterStormSeeds, QuorumConformanceHoldsUnderTheFaultStorm) {
  ClusterConformanceHarness harness{ClusterHarnessOptions{}};
  MetricRegistry pbt_metrics;
  auto runner = harness.MakeRunner(
      {.seed = GetParam(), .num_cases = 170, .max_ops = 40, .metrics = &pbt_metrics});
  auto failure = runner.Run();
  ASSERT_FALSE(failure.has_value()) << Describe(*failure);
  EXPECT_EQ(runner.stats().cases_run, 170u);
  EXPECT_EQ(pbt_metrics.Snapshot().counter("pbt.failures"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterStormSeeds, testing::Values(1u, 2u));

TEST(ClusterSeededBug, CorruptReadRepairIsCaughtMinimizedAndRecorded) {
  ClusterHarnessOptions options;
  options.cluster.seeded_bug_read_repair_wrong_value = true;
  ClusterConformanceHarness harness{options};
  auto runner = harness.MakeRunner({.seed = 17, .num_cases = 800, .max_ops = 45});
  auto failure = runner.Run();
  ASSERT_TRUE(failure.has_value())
      << "seeded read-repair corruption survived the storm";
  EXPECT_FALSE(failure->minimized.empty());
  EXPECT_LE(failure->minimized.size(), failure->original.size());
  // The case seed regenerates the original sequence exactly (two-integer replay).
  const std::vector<ClusterOp> regenerated = runner.Generate(failure->case_seed);
  ASSERT_EQ(regenerated.size(), failure->original.size());
  for (size_t i = 0; i < regenerated.size(); ++i) {
    EXPECT_EQ(regenerated[i].ToString(), failure->original[i].ToString());
  }
  // Re-run the minimized sequence once with the recorder armed: deterministic
  // failure, one artifact carrying the violation, the op list, and the metrics.
  FlightRecorder recorder("flight");
  recorder.set_case_seed(failure->case_seed);
  ClusterHarnessOptions armed = options;
  armed.recorder = &recorder;
  ClusterConformanceHarness rerun{armed};
  auto replay_error = rerun.Run(failure->minimized);
  ASSERT_TRUE(replay_error.has_value()) << "minimized sequence stopped failing";
  EXPECT_EQ(*replay_error, failure->message);
  ASSERT_EQ(recorder.written(), 1u);
  // The artifact carries the full cluster state: the ClusterSnapshotJson() dump
  // (ring, FD states, hint depths, acked floor, aggregated metrics) and the failing
  // op's assembled cross-node trace.
  const std::string artifact = ReadFile(recorder.dir() + "/flight-0-cluster_quorum.json");
  ASSERT_FALSE(artifact.empty());
  EXPECT_NE(artifact.find("\"cluster\":{"), std::string::npos);
  EXPECT_NE(artifact.find("\"acked_floor\""), std::string::npos);
  EXPECT_NE(artifact.find("\"hint_queue_depth\""), std::string::npos);
  EXPECT_NE(artifact.find("\"nodes_aggregated\""), std::string::npos);
  EXPECT_NE(artifact.find("\"cluster_trace\":{"), std::string::npos);
  EXPECT_NE(artifact.find("\"source\":\"coord\""), std::string::npos);
}

// --- Model-checked cross-node linearizability -----------------------------------------

McOptions Pct(size_t iterations, uint64_t seed = 1) {
  McOptions options;
  options.strategy = McOptions::Strategy::kPct;
  options.iterations = iterations;
  options.seed = seed;
  return options;
}

TEST(ClusterLinearizability, HoldsWithQuorumOverlapNoAdversary) {
  McResult result = McExplore(MakeClusterLinearizableBody(0), Pct(40, 1));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(ClusterLinearizability, HoldsAcrossPartitionAndHeal) {
  McResult result = McExplore(MakeClusterLinearizableBody(1), Pct(40, 1));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(ClusterLinearizability, HoldsAcrossCrashAndRestart) {
  McResult result = McExplore(MakeClusterLinearizableBody(2), Pct(40, 1));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(ClusterLinearizability, UnsafeQuorumsYieldAStaleReadWithReplayableArtifact) {
  // R + W <= N: read quorums need not intersect write quorums, and the checker finds
  // the interleaving where an acked write vanishes from a later read.
  McResult result = McExplore(MakeClusterStaleReadBody(), Pct(400, 1));
  ASSERT_FALSE(result.ok) << "stale read not found under R+W<=N";
  ASSERT_FALSE(result.failing_schedule.empty());
  EXPECT_NE(result.error.find("no linearization"), std::string::npos) << result.error;

  FlightRecord record = MakeMcFlightRecord(result, "cluster_stale_read");
  FlightRecorder recorder("flight");
  auto path_or = recorder.Write(record);
  ASSERT_TRUE(path_or.ok()) << path_or.status().ToString();
  const std::string json = ReadFile(path_or.value());
  EXPECT_NE(json.find("\"mc_schedule\":["), std::string::npos);
  EXPECT_NE(json.find("no linearization"), std::string::npos);

  // The persisted schedule replays the exact interleaving: same violation, one run.
  McResult replayed = McReplay(MakeClusterStaleReadBody(), result.failing_schedule);
  EXPECT_FALSE(replayed.ok);
  EXPECT_EQ(replayed.executions, 1u);
  EXPECT_EQ(replayed.error, result.error);
}

}  // namespace
}  // namespace ss
