// Unit tests for the ExtentManager: append/read discipline, soft write pointers,
// resets, ownership claims, recovery reconstruction, buffer pool.

#include <gtest/gtest.h>

#include "src/faults/faults.h"
#include "src/superblock/extent_manager.h"

namespace ss {
namespace {

DiskGeometry SmallGeo() {
  return DiskGeometry{.extent_count = 8, .pages_per_extent = 8, .page_size = 64};
}

class ExtentManagerTest : public testing::Test {
 protected:
  ExtentManagerTest() : disk_(SmallGeo()), scheduler_(&disk_), extents_(&disk_, &scheduler_) {
    FaultRegistry::Global().DisableAll();
  }

  ExtentId Claim() { return extents_.ClaimExtent(ExtentOwner::kChunkData).value(); }

  InMemoryDisk disk_;
  IoScheduler scheduler_;
  ExtentManager extents_;
};

TEST_F(ExtentManagerTest, ClaimAssignsOwnershipFromLowExtents) {
  EXPECT_EQ(Claim(), 1u);
  EXPECT_EQ(Claim(), 2u);
  EXPECT_EQ(extents_.Owner(1), ExtentOwner::kChunkData);
  EXPECT_EQ(extents_.Owner(3), ExtentOwner::kFree);
}

TEST_F(ExtentManagerTest, ClaimExhaustsEventually) {
  for (uint32_t i = 1; i < SmallGeo().extent_count; ++i) {
    EXPECT_TRUE(extents_.ClaimExtent(ExtentOwner::kChunkData).ok());
  }
  EXPECT_EQ(extents_.ClaimExtent(ExtentOwner::kChunkData).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ExtentManagerTest, AppendAdvancesWritePointerAndIsReadable) {
  const ExtentId e = Claim();
  Bytes data(100, 0x5a);  // 2 pages at 64B pages
  AppendResult result = extents_.Append(e, data, Dependency()).value();
  EXPECT_EQ(result.first_page, 0u);
  EXPECT_EQ(result.page_count, 2u);
  EXPECT_EQ(extents_.WritePointer(e), 2u);
  // Readable immediately, before any writeback is issued.
  Bytes read = extents_.Read(e, 0, 2).value();
  EXPECT_EQ(read[0], 0x5a);
  EXPECT_EQ(read[99], 0x5a);
  EXPECT_EQ(read[100], 0);  // zero padding
}

TEST_F(ExtentManagerTest, AppendRejectsBadArguments) {
  const ExtentId e = Claim();
  EXPECT_EQ(extents_.Append(0, BytesOf("x"), Dependency()).code(),
            StatusCode::kInvalidArgument);  // superblock extent
  EXPECT_EQ(extents_.Append(e, ByteSpan{}, Dependency()).code(),
            StatusCode::kInvalidArgument);  // empty
  EXPECT_EQ(extents_.Append(7, BytesOf("x"), Dependency()).code(),
            StatusCode::kInvalidArgument);  // unowned extent
}

TEST_F(ExtentManagerTest, AppendFullExtentIsResourceExhausted) {
  const ExtentId e = Claim();
  Bytes page(64, 1);
  for (uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(extents_.Append(e, page, Dependency()).ok());
  }
  EXPECT_EQ(extents_.Append(e, page, Dependency()).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(extents_.PagesFree(e), 0u);
}

TEST_F(ExtentManagerTest, ReadBeyondWritePointerForbidden) {
  const ExtentId e = Claim();
  ASSERT_TRUE(extents_.Append(e, BytesOf("data"), Dependency()).ok());
  EXPECT_TRUE(extents_.Read(e, 0, 1).ok());
  EXPECT_EQ(extents_.Read(e, 0, 2).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(extents_.Read(e, 1, 1).code(), StatusCode::kInvalidArgument);
}

TEST_F(ExtentManagerTest, AppendDependencyCoversDataAndSoftPointer) {
  const ExtentId e = Claim();
  AppendResult result = extents_.Append(e, BytesOf("abc"), Dependency()).value();
  EXPECT_FALSE(result.dep.IsPersistent());
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  EXPECT_TRUE(result.dep.IsPersistent());
  EXPECT_EQ(disk_.ReadSoftWp(e), 1u);
  EXPECT_EQ(disk_.ReadOwnership(e), ExtentOwner::kChunkData);
}

TEST_F(ExtentManagerTest, SoftPointerNeverOvertakesData) {
  // Issue writebacks one at a time under a crash with full bias and verify the
  // invariant: the persisted soft pointer never exceeds the persisted data extent.
  const ExtentId e = Claim();
  ASSERT_TRUE(extents_.Append(e, Bytes(200, 7), Dependency()).ok());
  Rng rng(3);
  for (int i = 0; i < 8; ++i) {
    InMemoryDisk disk2(SmallGeo());
    IoScheduler sched2(&disk2);
    ExtentManager em2(&disk2, &sched2);
    const ExtentId e2 = em2.ClaimExtent(ExtentOwner::kChunkData).value();
    ASSERT_TRUE(em2.Append(e2, Bytes(200, 9), Dependency()).ok());
    sched2.Crash(rng, 0.5);
    const uint32_t soft = disk2.ReadSoftWp(e2);
    for (uint32_t p = 0; p < soft; ++p) {
      EXPECT_EQ(disk2.ReadPage(e2, p).value()[0], 9) << "soft pointer ahead of data";
    }
  }
}

TEST_F(ExtentManagerTest, ResetRewindsAndGatesOnInput) {
  const ExtentId e = Claim();
  ASSERT_TRUE(extents_.Append(e, Bytes(64, 1), Dependency()).ok());
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  Dependency gate = Dependency::MakeLeaf();
  Dependency reset_dep = extents_.Reset(e, gate);
  EXPECT_EQ(extents_.WritePointer(e), 0u);
  EXPECT_FALSE(extents_.ResetSettled(e));
  scheduler_.Pump(10);
  EXPECT_FALSE(reset_dep.IsPersistent());  // still gated
  gate.MarkLeafPersistent();
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  EXPECT_TRUE(reset_dep.IsPersistent());
  EXPECT_TRUE(extents_.ResetSettled(e));
  EXPECT_EQ(disk_.ReadSoftWp(e), 0u);
}

TEST_F(ExtentManagerTest, AppendAfterResetStartsAtZero) {
  const ExtentId e = Claim();
  ASSERT_TRUE(extents_.Append(e, Bytes(64, 1), Dependency()).ok());
  extents_.Reset(e, Dependency());
  AppendResult result = extents_.Append(e, Bytes(64, 2), Dependency()).value();
  EXPECT_EQ(result.first_page, 0u);
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  EXPECT_EQ(disk_.ReadSoftWp(e), 1u);
  EXPECT_EQ(disk_.ReadPage(e, 0).value()[0], 2);
}

TEST_F(ExtentManagerTest, RecoveryRestoresStateFromDisk) {
  const ExtentId e = Claim();
  ASSERT_TRUE(extents_.Append(e, Bytes(130, 0x77), Dependency()).ok());  // 3 pages
  ASSERT_TRUE(scheduler_.FlushAll().ok());

  IoScheduler scheduler2(&disk_);
  ExtentManager recovered(&disk_, &scheduler2);
  EXPECT_EQ(recovered.WritePointer(e), 3u);
  EXPECT_EQ(recovered.Owner(e), ExtentOwner::kChunkData);
  EXPECT_EQ(recovered.Read(e, 0, 3).value()[0], 0x77);
  EXPECT_TRUE(recovered.ResetSettled(e));
}

TEST_F(ExtentManagerTest, RecoveryIgnoresUnpersistedAppends) {
  const ExtentId e = Claim();
  ASSERT_TRUE(scheduler_.FlushAll().ok());  // persist the claim
  ASSERT_TRUE(extents_.Append(e, Bytes(64, 0x99), Dependency()).ok());
  // No flush: the append never reaches the disk.
  scheduler_.CrashDropAll();
  IoScheduler scheduler2(&disk_);
  ExtentManager recovered(&disk_, &scheduler2);
  EXPECT_EQ(recovered.WritePointer(e), 0u);
  EXPECT_EQ(recovered.Read(e, 0, 1).code(), StatusCode::kInvalidArgument);
}

TEST_F(ExtentManagerTest, ClaimResetsStaleFreeExtent) {
  // Simulate the illegal-but-possible-under-bugs state: a free extent with wp > 0.
  ASSERT_TRUE(disk_.WriteSoftWp(5, 4).ok());
  IoScheduler scheduler2(&disk_);
  ExtentManager em2(&disk_, &scheduler2);
  const ExtentId claimed = em2.ClaimExtent(ExtentOwner::kChunkData).value();
  EXPECT_EQ(claimed, 1u);  // lowest free first
  // Claim extent 5 eventually; its stale pointer must be rewound.
  ExtentId e = claimed;
  while (e != 5) {
    e = em2.ClaimExtent(ExtentOwner::kChunkData).value();
  }
  EXPECT_EQ(em2.WritePointer(5), 0u);
  ASSERT_TRUE(scheduler2.FlushAll().ok());
  EXPECT_EQ(disk_.ReadSoftWp(5), 0u);
}

TEST_F(ExtentManagerTest, InjectedWriteFailureSurfacesSynchronously) {
  const ExtentId e = Claim();
  // A burst longer than the retry budget must surface to the caller.
  ScopedFault guard(disk_.fault_injector());
  disk_.fault_injector().FailWriteTimes(e, IoRetryOptions{}.max_attempts);
  EXPECT_EQ(extents_.Append(e, BytesOf("x"), Dependency()).code(), StatusCode::kIoError);
  // Nothing staged: the write pointer did not move.
  EXPECT_EQ(extents_.WritePointer(e), 0u);
  // Next append succeeds.
  EXPECT_TRUE(extents_.Append(e, BytesOf("x"), Dependency()).ok());
  EXPECT_GE(extents_.metrics().Snapshot().counter("extent.retry.exhausted"), 1u);
}

TEST_F(ExtentManagerTest, InjectedReadFailureSurfaces) {
  const ExtentId e = Claim();
  ASSERT_TRUE(extents_.Append(e, BytesOf("x"), Dependency()).ok());
  ScopedFault guard(disk_.fault_injector());
  disk_.fault_injector().FailReadTimes(e, IoRetryOptions{}.max_attempts);
  EXPECT_EQ(extents_.Read(e, 0, 1).code(), StatusCode::kIoError);
  EXPECT_TRUE(extents_.Read(e, 0, 1).ok());
}

TEST_F(ExtentManagerTest, SingleBlipIsAbsorbedByRetry) {
  const ExtentId e = Claim();
  ScopedFault guard(disk_.fault_injector());
  // One-shot faults (burst < retry budget) are retried away transparently.
  disk_.fault_injector().FailWriteOnce(e);
  EXPECT_TRUE(extents_.Append(e, BytesOf("x"), Dependency()).ok());
  disk_.fault_injector().FailReadOnce(e);
  EXPECT_TRUE(extents_.Read(e, 0, 1).ok());
  EXPECT_GE(extents_.metrics().Snapshot().counter("extent.retry.absorbed"), 2u);
  EXPECT_EQ(extents_.metrics().Snapshot().counter("extent.retry.exhausted"), 0u);
  // Backoff advanced the deterministic virtual clock, not the wall clock.
  EXPECT_GT(extents_.VirtualNow(), 0u);
  EXPECT_EQ(extents_.health().health(), DiskHealth::kHealthy);
}

TEST_F(ExtentManagerTest, PermanentFaultShortCircuitsAsDiskFailed) {
  const ExtentId e = Claim();
  ASSERT_TRUE(extents_.Append(e, BytesOf("x"), Dependency()).ok());
  ScopedFault guard(disk_.fault_injector());
  disk_.fault_injector().FailAlways(e, true);
  const uint64_t attempts_before = extents_.metrics().Snapshot().counter("extent.retry.attempts");
  EXPECT_EQ(extents_.Read(e, 0, 1).code(), StatusCode::kDiskFailed);
  // Permanent faults are not retried: one classifying attempt, no retry loop.
  EXPECT_EQ(extents_.metrics().Snapshot().counter("extent.retry.attempts"), attempts_before + 1);
  EXPECT_EQ(extents_.health().health(), DiskHealth::kFailed);
  EXPECT_GE(extents_.metrics().Snapshot().counter("extent.retry.permanent_failures"), 1u);
}

TEST_F(ExtentManagerTest, RepeatedBurstsDegradeThenFailHealth) {
  ExtentManager em(&disk_, &scheduler_, ExtentManager::kDefaultBufferPermits,
                   IoRetryOptions{.max_attempts = 2, .backoff_base_ticks = 1});
  const ExtentId e = em.ClaimExtent(ExtentOwner::kChunkData).value();
  ASSERT_TRUE(em.Append(e, BytesOf("x"), Dependency()).ok());
  ScopedFault guard(disk_.fault_injector());
  const DiskHealthOptions budget;  // default thresholds
  // Each surfaced burst burns `max_attempts` transient errors from the window.
  while (em.health().health() == DiskHealth::kHealthy) {
    disk_.fault_injector().FailReadTimes(e, 2);
    EXPECT_EQ(em.Read(e, 0, 1).code(), StatusCode::kIoError);
  }
  EXPECT_EQ(em.health().health(), DiskHealth::kDegraded);
  EXPECT_GE(em.health().windowed_errors(), budget.degrade_after);
  while (em.health().health() == DiskHealth::kDegraded) {
    disk_.fault_injector().FailReadTimes(e, 2);
    EXPECT_EQ(em.Read(e, 0, 1).code(), StatusCode::kIoError);
  }
  EXPECT_EQ(em.health().health(), DiskHealth::kFailed);
  EXPECT_EQ(em.health().budget_remaining(), 0u);
  // Health transitions are sticky: successes never promote back...
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(em.Read(e, 0, 1).ok());
  }
  EXPECT_EQ(em.health().health(), DiskHealth::kFailed);
  // ...only an explicit operator reset does.
  em.health().Reset();
  EXPECT_EQ(em.health().health(), DiskHealth::kHealthy);
  EXPECT_EQ(em.health().windowed_errors(), 0u);
}

TEST_F(ExtentManagerTest, SuccessesDecayTheErrorWindow) {
  const ExtentId e = Claim();
  ASSERT_TRUE(extents_.Append(e, BytesOf("x"), Dependency()).ok());
  ScopedFault guard(disk_.fault_injector());
  // Two absorbed blips put two errors in the window.
  disk_.fault_injector().FailReadOnce(e);
  ASSERT_TRUE(extents_.Read(e, 0, 1).ok());
  disk_.fault_injector().FailReadOnce(e);
  ASSERT_TRUE(extents_.Read(e, 0, 1).ok());
  EXPECT_GE(extents_.health().windowed_errors(), 2u);
  // A long healthy streak decays the window back to empty.
  for (int i = 0; i < 256 && extents_.health().windowed_errors() > 0; ++i) {
    ASSERT_TRUE(extents_.Read(e, 0, 1).ok());
  }
  EXPECT_EQ(extents_.health().windowed_errors(), 0u);
  EXPECT_EQ(extents_.health().health(), DiskHealth::kHealthy);
}

TEST_F(ExtentManagerTest, PagesNeededRounding) {
  EXPECT_EQ(extents_.PagesNeeded(1), 1u);
  EXPECT_EQ(extents_.PagesNeeded(64), 1u);
  EXPECT_EQ(extents_.PagesNeeded(65), 2u);
  EXPECT_EQ(extents_.PagesNeeded(128), 2u);
}

TEST_F(ExtentManagerTest, ExtentsOwnedByFilters) {
  Claim();
  extents_.ClaimExtent(ExtentOwner::kLsmMetadata).value();
  Claim();
  EXPECT_EQ(extents_.ExtentsOwnedBy(ExtentOwner::kChunkData).size(), 2u);
  EXPECT_EQ(extents_.ExtentsOwnedBy(ExtentOwner::kLsmMetadata).size(), 1u);
}

// Seeded bug #7: after a reset, the soft-pointer tracker is stale and covering updates
// are skipped, so a clean flush leaves data beyond the persisted pointer.
TEST_F(ExtentManagerTest, Bug7LeavesDataAboveSoftPointer) {
  const ExtentId e = Claim();
  ASSERT_TRUE(extents_.Append(e, Bytes(300, 1), Dependency()).ok());  // 5 pages
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  {
    ScopedBug bug(SeededBug::kSoftPointerNotResetPersisted);
    extents_.Reset(e, Dependency());
    ASSERT_TRUE(extents_.Append(e, Bytes(64, 2), Dependency()).ok());
  }
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  // Correct behaviour would persist soft wp 1; the bug leaves it at 0 because the
  // covering update was skipped.
  EXPECT_EQ(disk_.ReadSoftWp(e), 0u);
}

// Seeded bug #8: the returned dependency omits the soft-pointer leg, reporting
// persistence before recovery could actually see the data.
TEST_F(ExtentManagerTest, Bug8DependencyIgnoresSoftPointer) {
  const ExtentId e = Claim();
  ScopedBug bug(SeededBug::kWriteMissingSoftPointerDep);
  AppendResult result = extents_.Append(e, BytesOf("abc"), Dependency()).value();
  // Issue only data + ownership records; artificially keep the soft-wp record queued by
  // pumping exactly the first records. Simplest check: after a full flush both are
  // persistent, but the dependency graph differs — validated via the crash harness; at
  // unit level we just confirm the dependency can persist.
  ASSERT_TRUE(scheduler_.FlushAll().ok());
  EXPECT_TRUE(result.dep.IsPersistent());
}

}  // namespace
}  // namespace ss
