// Section 6 concurrency checking: the model-checked scenarios pass on the correct
// implementation (across strategies), and each seeded concurrency bug is caught.

#include <gtest/gtest.h>

#include "src/faults/faults.h"
#include "src/harness/concurrency.h"
#include "src/mc/mc.h"

namespace ss {
namespace {

McOptions Pct(size_t iterations, uint64_t seed = 1) {
  McOptions options;
  options.strategy = McOptions::Strategy::kPct;
  options.iterations = iterations;
  options.seed = seed;
  return options;
}

McOptions RandomWalk(size_t iterations, uint64_t seed = 1) {
  McOptions options;
  options.strategy = McOptions::Strategy::kRandom;
  options.iterations = iterations;
  options.seed = seed;
  return options;
}

class ConcurrencyBaseline : public testing::TestWithParam<uint64_t> {
 protected:
  ConcurrencyBaseline() { FaultRegistry::Global().DisableAll(); }
};

TEST_P(ConcurrencyBaseline, Fig4IndexHarnessPasses) {
  McResult result = McExplore(MakeFig4IndexBody(), Pct(150, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, FlushReclaimPasses) {
  McResult result = McExplore(MakeFlushReclaimBody(), Pct(200, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, ScanFlushPasses) {
  McResult result = McExplore(MakeScanFlushBody(), Pct(200, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, ScanCompactLevelPasses) {
  McResult result = McExplore(MakeScanCompactBody(), Pct(200, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, CompactLevelReclaimPasses) {
  McResult result = McExplore(MakeCompactLevelReclaimBody(), Pct(200, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, BufferPoolPasses) {
  McResult result = McExplore(MakeBufferPoolBody(), Pct(200, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, ListRemovePasses) {
  McResult result = McExplore(MakeListRemoveBody(), Pct(200, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, BulkAtomicityPasses) {
  McResult result = McExplore(MakeBulkAtomicityBody(), Pct(200, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, LinearizabilityHolds) {
  McResult result = McExplore(MakeLinearizabilityBody(), Pct(150, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, PutMigratePasses) {
  McResult result = McExplore(MakePutMigrateBody(), Pct(300, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, PutEvacuatePasses) {
  McResult result = McExplore(MakePutEvacuateBody(), Pct(300, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST_P(ConcurrencyBaseline, PutBatchMigratePasses) {
  McResult result = McExplore(MakePutBatchMigrateBody(), Pct(300, GetParam()));
  EXPECT_TRUE(result.ok) << result.error;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrencyBaseline, testing::Values(1, 17, 4242));

// Regression for the routing-commit clobber: the pre-fix Put captured its route, then
// unconditionally wrote directory[id] = disk after the store call, overwriting a
// concurrent migration's commit and leaving the directory pointing at the tombstoned
// source copy. The legacy knob resurrects that commit so the model checker can keep
// demonstrating the failure it used to cause.
TEST(RoutingCommitClobber, LegacyUnconditionalCommitLosesTheShard) {
  FaultRegistry::Global().DisableAll();
  McResult result = McExplore(MakePutMigrateBody(/*legacy_route_commit=*/true),
                              Pct(3000, 42));
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.deadlock);
  EXPECT_NE(result.error.find("shard"), std::string::npos) << result.error;
}

TEST(RoutingCommitClobber, FixedCommitSurvivesTheSameBudget) {
  FaultRegistry::Global().DisableAll();
  McResult result = McExplore(MakePutMigrateBody(), Pct(3000, 42));
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(ConcurrencyBaseline, RandomWalkAlsoPasses) {
  FaultRegistry::Global().DisableAll();
  EXPECT_TRUE(McExplore(MakeFig4IndexBody(), RandomWalk(150)).ok);
  EXPECT_TRUE(McExplore(MakeLinearizabilityBody(), RandomWalk(150)).ok);
}

// The buffer-pool harness is small enough for exhaustive DFS — the Loom-style sound
// check on correctness-critical primitives.
TEST(ConcurrencyBaseline, BufferPoolExhaustiveDfs) {
  FaultRegistry::Global().DisableAll();
  McOptions options;
  options.strategy = McOptions::Strategy::kDfs;
  options.iterations = 2000000;
  McResult result = McExplore(MakeBufferPoolBody(), options);
  EXPECT_TRUE(result.ok) << result.error;
}

class SeededConcurrencyBugs : public testing::Test {
 protected:
  SeededConcurrencyBugs() { FaultRegistry::Global().DisableAll(); }
};

TEST_F(SeededConcurrencyBugs, Bug11LocatorRaceCaught) {
  ScopedBug bug(SeededBug::kLocatorInvalidOnWriteFlushRace);
  McResult result = McExplore(MakeFig4IndexBody(), Pct(2000, 42));
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.deadlock);
}

TEST_F(SeededConcurrencyBugs, Bug12BufferPoolDeadlockCaught) {
  ScopedBug bug(SeededBug::kBufferPoolDeadlock);
  McResult result = McExplore(MakeBufferPoolBody(), Pct(2000, 42));
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.deadlock);
  EXPECT_FALSE(result.failing_schedule.empty());
}

TEST_F(SeededConcurrencyBugs, Bug13ListRemoveRaceCaught) {
  ScopedBug bug(SeededBug::kListRemoveRace);
  McResult result = McExplore(MakeListRemoveBody(), Pct(3000, 42));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("missed"), std::string::npos);
}

TEST_F(SeededConcurrencyBugs, Bug14FlushReclaimRaceCaught) {
  ScopedBug bug(SeededBug::kCompactReclaimMetadataRace);
  McResult result = McExplore(MakeFlushReclaimBody(), Pct(4000, 1));
  EXPECT_FALSE(result.ok);
}

// The leveled-compaction tombstone-lifetime bug: dropping tombstones during a
// non-bottom merge resurrects the deleted key once the younger run is gone. The
// scan/compact harness catches it even single-threaded, so a modest budget suffices.
TEST_F(SeededConcurrencyBugs, TombstoneDropAboveBottomCaught) {
  McResult result = McExplore(MakeScanCompactBody(/*seeded_tombstone_bug=*/true),
                              Pct(500, 42));
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.deadlock);
  EXPECT_NE(result.error.find("resurrected"), std::string::npos) << result.error;
}

TEST_F(SeededConcurrencyBugs, Bug16BulkRaceCaught) {
  ScopedBug bug(SeededBug::kBulkCreateRemoveRace);
  McResult result = McExplore(MakeBulkAtomicityBody(), Pct(2000, 42));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("atomic"), std::string::npos);
}

// Reproduces the paper's observation that randomized PCT finds depth-limited bugs that
// plain random walks miss at equal budgets (section 6's tooling trade-off).
TEST_F(SeededConcurrencyBugs, PctOutperformsRandomOnBug14) {
  ScopedBug bug(SeededBug::kCompactReclaimMetadataRace);
  McResult random = McExplore(MakeFlushReclaimBody(), RandomWalk(400, 7));
  McResult pct = McExplore(MakeFlushReclaimBody(), Pct(4000, 1));
  EXPECT_TRUE(random.ok);   // random misses at this budget
  EXPECT_FALSE(pct.ok);     // PCT finds it
}

}  // namespace
}  // namespace ss
