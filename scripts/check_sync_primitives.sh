#!/usr/bin/env bash
# Sync-primitive lint: raw standard-library synchronization primitives are only legal
# inside src/sync/ (the ss::Mutex / ss::CondVar / ss::Thread wrappers themselves).
# Everywhere else must go through the wrappers so the lock-order witness, TSan, and
# the model checker all see the same acquisitions. Run from the repo root; exits
# non-zero and prints every offending line when the invariant is broken.
#
# Second invariant: no wall clocks anywhere in src/. Every timed behaviour — extent
# retry backoff, the cluster tier's network delays, per-op timeouts, and heartbeat
# rounds — runs on explicitly advanced virtual tick clocks, which is what makes
# harness failures replayable from seeds and model-checked schedules deterministic.
# A std::chrono clock or a sleep call would silently break that.

set -u

cd "$(dirname "$0")/.."

PATTERN='std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|unique_lock|shared_lock|scoped_lock|thread|jthread)\b'

violations=$(grep -rnE "$PATTERN" src tests --include='*.h' --include='*.cc' \
  | grep -v '^src/sync/' || true)

if [ -n "$violations" ]; then
  echo "error: raw std synchronization primitives outside src/sync/:" >&2
  echo "$violations" >&2
  echo >&2
  echo "Use ss::Mutex / ss::LockGuard / ss::CondVar / ss::Thread from src/sync/sync.h" >&2
  echo "instead, so the lock-order witness and the model checker can observe the" >&2
  echo "acquisition. See DESIGN.md, 'Static & dynamic analysis'." >&2
  exit 1
fi

CLOCK_PATTERN='std::chrono::(system_clock|steady_clock|high_resolution_clock)|\bgettimeofday\b|\bclock_gettime\b|std::this_thread::sleep|\busleep\b|\bnanosleep\b'

clock_violations=$(grep -rnE "$CLOCK_PATTERN" src --include='*.h' --include='*.cc' || true)

if [ -n "$clock_violations" ]; then
  echo "error: wall-clock usage in src/:" >&2
  echo "$clock_violations" >&2
  echo >&2
  echo "All timing in src/ runs on virtual tick clocks (ClusterNet's cluster clock," >&2
  echo "ExtentManager's retry clock): determinism and seed replay depend on it." >&2
  echo "Thread timing belongs in harness options, not wall-clock sleeps." >&2
  exit 1
fi

echo "sync-primitive lint: clean (raw std primitives confined to src/sync/)"
echo "wall-clock lint: clean (src/ runs entirely on virtual tick clocks)"
