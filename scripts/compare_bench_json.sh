#!/usr/bin/env bash
# Bench regression gate: diffs two normalized BENCH_<area>.json snapshots (as
# written by scripts/emit_bench_json.sh) and fails when any benchmark regressed
# beyond a threshold. A regression is either:
#   * real_time grew by more than <pct>% over the baseline, or
#   * items_per_second fell by more than <pct>% under the baseline.
#
# Usage: scripts/compare_bench_json.sh [-t pct] baseline.json candidate.json
#   -t pct   regression threshold in percent (default: 25)
#
# Benchmarks present only in the baseline (removed) or only in the candidate
# (added) are reported as warnings, not failures — renames and new benchmarks
# should not block a PR; a follow-up refreshes the checked-in snapshot.
#
# Exit codes: 0 = no regression, 1 = at least one regression beyond threshold,
#             2 = usage error or unparseable snapshot.

set -euo pipefail

threshold=25
while getopts ":t:" opt; do
  case "$opt" in
    t) threshold="$OPTARG" ;;
    *) echo "usage: $0 [-t pct] baseline.json candidate.json" >&2; exit 2 ;;
  esac
done
shift $((OPTIND - 1))

if [ $# -ne 2 ]; then
  echo "usage: $0 [-t pct] baseline.json candidate.json" >&2
  exit 2
fi
baseline="$1"
candidate="$2"

case "$threshold" in
  '' | *[!0-9.]* | *.*.*) echo "error: threshold '-t $threshold' is not a number" >&2; exit 2 ;;
esac

for f in "$baseline" "$candidate"; do
  if [ ! -r "$f" ]; then
    echo "error: cannot read snapshot '$f'" >&2
    exit 2
  fi
  if ! jq -e '.results | type == "array"' "$f" > /dev/null 2>&1; then
    echo "error: '$f' is not a normalized bench snapshot (.results missing)" >&2
    exit 2
  fi
done

area_base=$(jq -r '.area // "?"' "$baseline")
area_cand=$(jq -r '.area // "?"' "$candidate")
if [ "$area_base" != "$area_cand" ]; then
  echo "warning: comparing different areas ('$area_base' vs '$area_cand')" >&2
fi

echo "== bench compare: area=$area_cand threshold=${threshold}%"
echo "   baseline:  $baseline"
echo "   candidate: $candidate"

# One pass in jq: join the two result sets by benchmark name and classify each
# pair. Output is one tab-separated line per benchmark:
#   <status> <name> <metric> <base> <cand> <delta_pct>
# where status is OK / REGRESSION / MISSING / ADDED. The shell side only counts
# and pretty-prints; all numeric policy lives here.
report=$(jq -rn --arg pct "$threshold" \
  --slurpfile base "$baseline" --slurpfile cand "$candidate" '
  ($pct | tonumber) as $t
  | ($base[0].results | map({key: .name, value: .}) | from_entries) as $b
  | ($cand[0].results | map({key: .name, value: .}) | from_entries) as $c
  | def pct_delta($old; $new): if $old == 0 then 0 else (($new - $old) / $old * 100) end;
    def fmt: . * 100 | round / 100;
    ( $b | keys[] as $k | select($c | has($k) | not) | $k
      | "MISSING\t\(.)\t-\t-\t-\t-" ),
    ( $c | keys[] as $k | select($b | has($k) | not) | $k
      | "ADDED\t\(.)\t-\t-\t-\t-" ),
    ( $b | keys[] as $k | select($c | has($k)) | $k as $name
      | $b[$name] as $old | $c[$name] as $new
      | ( pct_delta($old.real_time; $new.real_time) ) as $dt
      | ( if ($old.items_per_second != null and $new.items_per_second != null)
          then pct_delta($old.items_per_second; $new.items_per_second) else null end ) as $di
      | if $dt > $t then
          "REGRESSION\t\($name)\treal_time\t\($old.real_time | fmt)\t\($new.real_time | fmt)\t+\($dt | fmt)%"
        elif ($di != null and $di < -$t) then
          "REGRESSION\t\($name)\titems_per_second\t\($old.items_per_second | fmt)\t\($new.items_per_second | fmt)\t\($di | fmt)%"
        else
          "OK\t\($name)\treal_time\t\($old.real_time | fmt)\t\($new.real_time | fmt)\t\(if $dt >= 0 then "+" else "" end)\($dt | fmt)%"
        end )
') || { echo "error: snapshot comparison failed (malformed results?)" >&2; exit 2; }

regressions=0
while IFS=$'\t' read -r status name metric old new delta; do
  case "$status" in
    REGRESSION)
      regressions=$((regressions + 1))
      echo "  REGRESSION $name: $metric $old -> $new ($delta, threshold ${threshold}%)"
      ;;
    MISSING) echo "  warning: '$name' in baseline but not candidate (removed/renamed?)" ;;
    ADDED) echo "  note: '$name' new in candidate (no baseline)" ;;
    OK) echo "  ok $name: $metric $old -> $new ($delta)" ;;
  esac
done <<< "$report"

if [ "$regressions" -gt 0 ]; then
  echo "FAIL: $regressions benchmark(s) regressed beyond ${threshold}%"
  exit 1
fi
echo "PASS: no benchmark regressed beyond ${threshold}%"
