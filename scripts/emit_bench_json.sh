#!/usr/bin/env bash
# Benchmark snapshot emitter: runs the storage benches and writes one normalized
# BENCH_<area>.json per area at the repo root, so CI can diff throughput and
# fault-handling cost across commits without parsing Google Benchmark's raw output.
#
#   area     binary                what it measures
#   kv       bench_kv_ops          single-node KV op throughput
#   lsm      bench_kv_ops          LSM read path: bloom-filtered negative lookups,
#                                  flush cost (lsm.bloom.hit/miss/false_positive)
#   fault    bench_fault_recovery  retry/health machinery cost under fault storms
#   cluster  bench_cluster_quorum  quorum replication: clean/degraded/lossy paths
#   load     bench_load_gen        zipfian mixed load on both disk backends
#                                  (span.*.ticks p50/p99/p999 per stage, fsync counts)
#
# Usage: scripts/emit_bench_json.sh [area ...]    (default: all areas)
# Diff two snapshots with the sibling gate: scripts/compare_bench_json.sh.
# Honors BUILD_DIR (default: build) and BENCH_ARGS (extra benchmark flags, e.g.
# --benchmark_filter=BM_QuorumPut). Requires the benches to be built:
#   cmake --build "$BUILD_DIR" -j --target bench_kv_ops bench_fault_recovery bench_cluster_quorum bench_load_gen

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

bench_binary() {
  case "$1" in
    kv | lsm) echo bench_kv_ops ;;
    fault) echo bench_fault_recovery ;;
    cluster) echo bench_cluster_quorum ;;
    load) echo bench_load_gen ;;
    *) echo "error: unknown bench area '$1' (want: kv lsm fault cluster load)" >&2; return 1 ;;
  esac
}

# Area-specific default filter (the lsm area reuses bench_kv_ops but keeps only the
# read-path benchmarks). BENCH_ARGS still appends on top.
bench_filter() {
  case "$1" in
    lsm) echo "--benchmark_filter=BM_NegativeLookup|BM_Get|BM_FlushIndex" ;;
    *) echo "" ;;
  esac
}

# Normalizes one Google Benchmark JSON document: keeps the context fields worth
# diffing, flattens each benchmark to (name, timing, throughput), and moves every
# user counter (degraded ops, hints, retries, ...) under "counters".
normalize() {
  local area="$1" binary="$2"
  jq --arg area "$area" --arg bench "$binary" '
    def known: ["name","run_name","run_type","repetitions","repetition_index",
                "threads","iterations","real_time","cpu_time","time_unit",
                "items_per_second","bytes_per_second","family_index",
                "per_family_instance_index","aggregate_name"];
    {
      area: $area,
      bench: $bench,
      context: {
        date: .context.date,
        host: .context.host_name,
        cpus: .context.num_cpus,
        build: .context.library_build_type
      },
      results: [ .benchmarks[] | {
        name: .name,
        iterations: .iterations,
        real_time: .real_time,
        cpu_time: .cpu_time,
        time_unit: .time_unit,
        items_per_second: (.items_per_second // null),
        bytes_per_second: (.bytes_per_second // null),
        counters: (to_entries
                   | map(select(.key as $k | known | index($k) | not))
                   | from_entries)
      }]
    }'
}

areas=("$@")
if [ "${#areas[@]}" -eq 0 ]; then
  areas=(kv lsm fault cluster load)
fi

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT

for area in "${areas[@]}"; do
  binary=$(bench_binary "$area")
  filter=$(bench_filter "$area")
  path="$BUILD_DIR/bench/$binary"
  if [ ! -x "$path" ]; then
    echo "error: $path not built (cmake --build $BUILD_DIR --target $binary)" >&2
    exit 1
  fi
  out="BENCH_${area}.json"
  echo "== $binary -> $out"
  # Stage through the scratch dir: the bench must exit cleanly AND emit valid JSON
  # before anything replaces $out. A crashed or truncated run used to leave a
  # malformed snapshot behind for CI to diff against.
  raw="$scratch/$area.raw.json"
  # shellcheck disable=SC2086
  if ! "$path" --benchmark_format=json $filter ${BENCH_ARGS:-} > "$raw"; then
    echo "error: $binary exited non-zero for area '$area'; $out left untouched" >&2
    exit 1
  fi
  if ! jq -e '.benchmarks | type == "array" and length > 0' "$raw" > /dev/null 2>&1; then
    echo "error: $binary produced unparseable or empty benchmark JSON for area '$area'" >&2
    echo "       (raw output preserved at $raw for inspection); $out left untouched" >&2
    trap - EXIT  # keep the scratch dir for post-mortem
    exit 1
  fi
  normalize "$area" "$binary" < "$raw" > "$scratch/$area.json"
  mv "$scratch/$area.json" "$out"
  jq -r '.results[] | "  \(.name): \(.real_time | floor)\(.time_unit)"' "$out"
done

echo "bench snapshots written: $(printf 'BENCH_%s.json ' "${areas[@]}")"
