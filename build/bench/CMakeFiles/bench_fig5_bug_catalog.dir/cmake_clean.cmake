file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_bug_catalog.dir/bench_fig5_bug_catalog.cc.o"
  "CMakeFiles/bench_fig5_bug_catalog.dir/bench_fig5_bug_catalog.cc.o.d"
  "bench_fig5_bug_catalog"
  "bench_fig5_bug_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_bug_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
