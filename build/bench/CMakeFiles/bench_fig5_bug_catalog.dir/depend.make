# Empty dependencies file for bench_fig5_bug_catalog.
# This may be replaced when dependencies are built.
