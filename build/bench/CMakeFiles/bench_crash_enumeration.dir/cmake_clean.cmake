file(REMOVE_RECURSE
  "CMakeFiles/bench_crash_enumeration.dir/bench_crash_enumeration.cc.o"
  "CMakeFiles/bench_crash_enumeration.dir/bench_crash_enumeration.cc.o.d"
  "bench_crash_enumeration"
  "bench_crash_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crash_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
