# Empty compiler generated dependencies file for bench_crash_enumeration.
# This may be replaced when dependencies are built.
