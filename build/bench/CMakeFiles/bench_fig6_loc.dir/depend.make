# Empty dependencies file for bench_fig6_loc.
# This may be replaced when dependencies are built.
