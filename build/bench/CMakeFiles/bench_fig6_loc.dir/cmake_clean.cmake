file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_loc.dir/bench_fig6_loc.cc.o"
  "CMakeFiles/bench_fig6_loc.dir/bench_fig6_loc.cc.o.d"
  "bench_fig6_loc"
  "bench_fig6_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
