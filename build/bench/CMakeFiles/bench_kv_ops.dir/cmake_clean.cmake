file(REMOVE_RECURSE
  "CMakeFiles/bench_kv_ops.dir/bench_kv_ops.cc.o"
  "CMakeFiles/bench_kv_ops.dir/bench_kv_ops.cc.o.d"
  "bench_kv_ops"
  "bench_kv_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kv_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
