# Empty dependencies file for bench_kv_ops.
# This may be replaced when dependencies are built.
