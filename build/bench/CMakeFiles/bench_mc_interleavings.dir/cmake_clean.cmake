file(REMOVE_RECURSE
  "CMakeFiles/bench_mc_interleavings.dir/bench_mc_interleavings.cc.o"
  "CMakeFiles/bench_mc_interleavings.dir/bench_mc_interleavings.cc.o.d"
  "bench_mc_interleavings"
  "bench_mc_interleavings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mc_interleavings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
