# Empty compiler generated dependencies file for bench_mc_interleavings.
# This may be replaced when dependencies are built.
