file(REMOVE_RECURSE
  "CMakeFiles/bench_bias_ablation.dir/bench_bias_ablation.cc.o"
  "CMakeFiles/bench_bias_ablation.dir/bench_bias_ablation.cc.o.d"
  "bench_bias_ablation"
  "bench_bias_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bias_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
