file(REMOVE_RECURSE
  "CMakeFiles/bench_pbt_throughput.dir/bench_pbt_throughput.cc.o"
  "CMakeFiles/bench_pbt_throughput.dir/bench_pbt_throughput.cc.o.d"
  "bench_pbt_throughput"
  "bench_pbt_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pbt_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
