
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/component_harness.cc" "src/CMakeFiles/ss_harness.dir/harness/component_harness.cc.o" "gcc" "src/CMakeFiles/ss_harness.dir/harness/component_harness.cc.o.d"
  "/root/repo/src/harness/concurrency.cc" "src/CMakeFiles/ss_harness.dir/harness/concurrency.cc.o" "gcc" "src/CMakeFiles/ss_harness.dir/harness/concurrency.cc.o.d"
  "/root/repo/src/harness/crash_enum.cc" "src/CMakeFiles/ss_harness.dir/harness/crash_enum.cc.o" "gcc" "src/CMakeFiles/ss_harness.dir/harness/crash_enum.cc.o.d"
  "/root/repo/src/harness/fig5.cc" "src/CMakeFiles/ss_harness.dir/harness/fig5.cc.o" "gcc" "src/CMakeFiles/ss_harness.dir/harness/fig5.cc.o.d"
  "/root/repo/src/harness/kv_harness.cc" "src/CMakeFiles/ss_harness.dir/harness/kv_harness.cc.o" "gcc" "src/CMakeFiles/ss_harness.dir/harness/kv_harness.cc.o.d"
  "/root/repo/src/harness/rpc_harness.cc" "src/CMakeFiles/ss_harness.dir/harness/rpc_harness.cc.o" "gcc" "src/CMakeFiles/ss_harness.dir/harness/rpc_harness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ss_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_pbt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_chunk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_superblock.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_dep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ss_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
