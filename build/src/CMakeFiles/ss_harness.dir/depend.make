# Empty dependencies file for ss_harness.
# This may be replaced when dependencies are built.
