file(REMOVE_RECURSE
  "CMakeFiles/ss_harness.dir/harness/component_harness.cc.o"
  "CMakeFiles/ss_harness.dir/harness/component_harness.cc.o.d"
  "CMakeFiles/ss_harness.dir/harness/concurrency.cc.o"
  "CMakeFiles/ss_harness.dir/harness/concurrency.cc.o.d"
  "CMakeFiles/ss_harness.dir/harness/crash_enum.cc.o"
  "CMakeFiles/ss_harness.dir/harness/crash_enum.cc.o.d"
  "CMakeFiles/ss_harness.dir/harness/fig5.cc.o"
  "CMakeFiles/ss_harness.dir/harness/fig5.cc.o.d"
  "CMakeFiles/ss_harness.dir/harness/kv_harness.cc.o"
  "CMakeFiles/ss_harness.dir/harness/kv_harness.cc.o.d"
  "CMakeFiles/ss_harness.dir/harness/rpc_harness.cc.o"
  "CMakeFiles/ss_harness.dir/harness/rpc_harness.cc.o.d"
  "libss_harness.a"
  "libss_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
