file(REMOVE_RECURSE
  "libss_harness.a"
)
