# Empty dependencies file for ss_disk.
# This may be replaced when dependencies are built.
