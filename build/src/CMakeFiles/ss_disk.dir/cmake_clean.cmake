file(REMOVE_RECURSE
  "CMakeFiles/ss_disk.dir/disk/disk.cc.o"
  "CMakeFiles/ss_disk.dir/disk/disk.cc.o.d"
  "libss_disk.a"
  "libss_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
