file(REMOVE_RECURSE
  "libss_disk.a"
)
