file(REMOVE_RECURSE
  "CMakeFiles/ss_pbt.dir/pbt/pbt.cc.o"
  "CMakeFiles/ss_pbt.dir/pbt/pbt.cc.o.d"
  "libss_pbt.a"
  "libss_pbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_pbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
