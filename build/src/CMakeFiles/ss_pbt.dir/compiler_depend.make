# Empty compiler generated dependencies file for ss_pbt.
# This may be replaced when dependencies are built.
