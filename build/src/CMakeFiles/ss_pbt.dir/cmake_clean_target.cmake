file(REMOVE_RECURSE
  "libss_pbt.a"
)
