
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bytes.cc" "src/CMakeFiles/ss_common.dir/common/bytes.cc.o" "gcc" "src/CMakeFiles/ss_common.dir/common/bytes.cc.o.d"
  "/root/repo/src/common/cover.cc" "src/CMakeFiles/ss_common.dir/common/cover.cc.o" "gcc" "src/CMakeFiles/ss_common.dir/common/cover.cc.o.d"
  "/root/repo/src/common/crc32c.cc" "src/CMakeFiles/ss_common.dir/common/crc32c.cc.o" "gcc" "src/CMakeFiles/ss_common.dir/common/crc32c.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/ss_common.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/ss_common.dir/common/rng.cc.o.d"
  "/root/repo/src/common/serde.cc" "src/CMakeFiles/ss_common.dir/common/serde.cc.o" "gcc" "src/CMakeFiles/ss_common.dir/common/serde.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ss_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ss_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/uuid.cc" "src/CMakeFiles/ss_common.dir/common/uuid.cc.o" "gcc" "src/CMakeFiles/ss_common.dir/common/uuid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
