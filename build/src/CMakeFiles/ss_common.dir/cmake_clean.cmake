file(REMOVE_RECURSE
  "CMakeFiles/ss_common.dir/common/bytes.cc.o"
  "CMakeFiles/ss_common.dir/common/bytes.cc.o.d"
  "CMakeFiles/ss_common.dir/common/cover.cc.o"
  "CMakeFiles/ss_common.dir/common/cover.cc.o.d"
  "CMakeFiles/ss_common.dir/common/crc32c.cc.o"
  "CMakeFiles/ss_common.dir/common/crc32c.cc.o.d"
  "CMakeFiles/ss_common.dir/common/rng.cc.o"
  "CMakeFiles/ss_common.dir/common/rng.cc.o.d"
  "CMakeFiles/ss_common.dir/common/serde.cc.o"
  "CMakeFiles/ss_common.dir/common/serde.cc.o.d"
  "CMakeFiles/ss_common.dir/common/status.cc.o"
  "CMakeFiles/ss_common.dir/common/status.cc.o.d"
  "CMakeFiles/ss_common.dir/common/uuid.cc.o"
  "CMakeFiles/ss_common.dir/common/uuid.cc.o.d"
  "libss_common.a"
  "libss_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
