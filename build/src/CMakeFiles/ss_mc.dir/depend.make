# Empty dependencies file for ss_mc.
# This may be replaced when dependencies are built.
