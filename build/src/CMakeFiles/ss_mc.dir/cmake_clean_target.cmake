file(REMOVE_RECURSE
  "libss_mc.a"
)
