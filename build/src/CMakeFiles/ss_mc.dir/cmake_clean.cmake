file(REMOVE_RECURSE
  "CMakeFiles/ss_mc.dir/mc/linearizability.cc.o"
  "CMakeFiles/ss_mc.dir/mc/linearizability.cc.o.d"
  "CMakeFiles/ss_mc.dir/mc/mc.cc.o"
  "CMakeFiles/ss_mc.dir/mc/mc.cc.o.d"
  "libss_mc.a"
  "libss_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
