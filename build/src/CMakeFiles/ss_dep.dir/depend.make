# Empty dependencies file for ss_dep.
# This may be replaced when dependencies are built.
