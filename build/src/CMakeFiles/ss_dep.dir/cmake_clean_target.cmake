file(REMOVE_RECURSE
  "libss_dep.a"
)
