file(REMOVE_RECURSE
  "CMakeFiles/ss_dep.dir/dep/dependency.cc.o"
  "CMakeFiles/ss_dep.dir/dep/dependency.cc.o.d"
  "CMakeFiles/ss_dep.dir/dep/io_scheduler.cc.o"
  "CMakeFiles/ss_dep.dir/dep/io_scheduler.cc.o.d"
  "libss_dep.a"
  "libss_dep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_dep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
