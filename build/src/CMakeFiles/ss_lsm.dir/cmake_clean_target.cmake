file(REMOVE_RECURSE
  "libss_lsm.a"
)
