file(REMOVE_RECURSE
  "CMakeFiles/ss_lsm.dir/lsm/lsm_index.cc.o"
  "CMakeFiles/ss_lsm.dir/lsm/lsm_index.cc.o.d"
  "libss_lsm.a"
  "libss_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
