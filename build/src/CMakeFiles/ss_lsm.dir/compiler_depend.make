# Empty compiler generated dependencies file for ss_lsm.
# This may be replaced when dependencies are built.
