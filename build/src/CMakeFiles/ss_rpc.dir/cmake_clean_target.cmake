file(REMOVE_RECURSE
  "libss_rpc.a"
)
