file(REMOVE_RECURSE
  "CMakeFiles/ss_rpc.dir/rpc/node_server.cc.o"
  "CMakeFiles/ss_rpc.dir/rpc/node_server.cc.o.d"
  "libss_rpc.a"
  "libss_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
