# Empty compiler generated dependencies file for ss_rpc.
# This may be replaced when dependencies are built.
