file(REMOVE_RECURSE
  "libss_chunk.a"
)
