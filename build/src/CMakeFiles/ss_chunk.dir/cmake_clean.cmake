file(REMOVE_RECURSE
  "CMakeFiles/ss_chunk.dir/chunk/chunk_format.cc.o"
  "CMakeFiles/ss_chunk.dir/chunk/chunk_format.cc.o.d"
  "CMakeFiles/ss_chunk.dir/chunk/chunk_store.cc.o"
  "CMakeFiles/ss_chunk.dir/chunk/chunk_store.cc.o.d"
  "libss_chunk.a"
  "libss_chunk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_chunk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
