# Empty compiler generated dependencies file for ss_chunk.
# This may be replaced when dependencies are built.
