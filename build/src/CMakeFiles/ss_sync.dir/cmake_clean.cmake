file(REMOVE_RECURSE
  "CMakeFiles/ss_sync.dir/sync/sync.cc.o"
  "CMakeFiles/ss_sync.dir/sync/sync.cc.o.d"
  "libss_sync.a"
  "libss_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
