# Empty dependencies file for ss_sync.
# This may be replaced when dependencies are built.
