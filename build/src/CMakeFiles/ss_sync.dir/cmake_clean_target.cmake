file(REMOVE_RECURSE
  "libss_sync.a"
)
