file(REMOVE_RECURSE
  "libss_kv.a"
)
