file(REMOVE_RECURSE
  "CMakeFiles/ss_kv.dir/kv/shard_store.cc.o"
  "CMakeFiles/ss_kv.dir/kv/shard_store.cc.o.d"
  "libss_kv.a"
  "libss_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
