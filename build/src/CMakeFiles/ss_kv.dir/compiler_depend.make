# Empty compiler generated dependencies file for ss_kv.
# This may be replaced when dependencies are built.
