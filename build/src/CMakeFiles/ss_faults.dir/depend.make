# Empty dependencies file for ss_faults.
# This may be replaced when dependencies are built.
