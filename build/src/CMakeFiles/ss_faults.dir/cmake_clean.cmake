file(REMOVE_RECURSE
  "CMakeFiles/ss_faults.dir/faults/faults.cc.o"
  "CMakeFiles/ss_faults.dir/faults/faults.cc.o.d"
  "libss_faults.a"
  "libss_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
