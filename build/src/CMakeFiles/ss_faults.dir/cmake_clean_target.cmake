file(REMOVE_RECURSE
  "libss_faults.a"
)
