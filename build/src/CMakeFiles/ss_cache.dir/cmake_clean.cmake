file(REMOVE_RECURSE
  "CMakeFiles/ss_cache.dir/cache/buffer_cache.cc.o"
  "CMakeFiles/ss_cache.dir/cache/buffer_cache.cc.o.d"
  "libss_cache.a"
  "libss_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
