# Empty dependencies file for ss_cache.
# This may be replaced when dependencies are built.
