# Empty dependencies file for ss_model.
# This may be replaced when dependencies are built.
