file(REMOVE_RECURSE
  "CMakeFiles/ss_model.dir/model/models.cc.o"
  "CMakeFiles/ss_model.dir/model/models.cc.o.d"
  "libss_model.a"
  "libss_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
