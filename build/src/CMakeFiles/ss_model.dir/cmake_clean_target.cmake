file(REMOVE_RECURSE
  "libss_model.a"
)
