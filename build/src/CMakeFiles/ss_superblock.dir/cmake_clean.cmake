file(REMOVE_RECURSE
  "CMakeFiles/ss_superblock.dir/superblock/extent_manager.cc.o"
  "CMakeFiles/ss_superblock.dir/superblock/extent_manager.cc.o.d"
  "libss_superblock.a"
  "libss_superblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ss_superblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
