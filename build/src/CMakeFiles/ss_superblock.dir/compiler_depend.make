# Empty compiler generated dependencies file for ss_superblock.
# This may be replaced when dependencies are built.
