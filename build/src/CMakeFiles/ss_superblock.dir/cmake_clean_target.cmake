file(REMOVE_RECURSE
  "libss_superblock.a"
)
