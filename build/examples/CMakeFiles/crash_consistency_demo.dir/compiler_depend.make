# Empty compiler generated dependencies file for crash_consistency_demo.
# This may be replaced when dependencies are built.
