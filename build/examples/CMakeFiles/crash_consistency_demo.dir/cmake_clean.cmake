file(REMOVE_RECURSE
  "CMakeFiles/crash_consistency_demo.dir/crash_consistency_demo.cpp.o"
  "CMakeFiles/crash_consistency_demo.dir/crash_consistency_demo.cpp.o.d"
  "crash_consistency_demo"
  "crash_consistency_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_consistency_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
