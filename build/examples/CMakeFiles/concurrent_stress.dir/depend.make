# Empty dependencies file for concurrent_stress.
# This may be replaced when dependencies are built.
