file(REMOVE_RECURSE
  "CMakeFiles/concurrent_stress.dir/concurrent_stress.cpp.o"
  "CMakeFiles/concurrent_stress.dir/concurrent_stress.cpp.o.d"
  "concurrent_stress"
  "concurrent_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
