file(REMOVE_RECURSE
  "CMakeFiles/reclamation_demo.dir/reclamation_demo.cpp.o"
  "CMakeFiles/reclamation_demo.dir/reclamation_demo.cpp.o.d"
  "reclamation_demo"
  "reclamation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reclamation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
