# Empty compiler generated dependencies file for reclamation_demo.
# This may be replaced when dependencies are built.
