file(REMOVE_RECURSE
  "CMakeFiles/pbt_test.dir/pbt_test.cc.o"
  "CMakeFiles/pbt_test.dir/pbt_test.cc.o.d"
  "pbt_test"
  "pbt_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pbt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
