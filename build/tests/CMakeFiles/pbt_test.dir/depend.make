# Empty dependencies file for pbt_test.
# This may be replaced when dependencies are built.
