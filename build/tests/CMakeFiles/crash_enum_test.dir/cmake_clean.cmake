file(REMOVE_RECURSE
  "CMakeFiles/crash_enum_test.dir/crash_enum_test.cc.o"
  "CMakeFiles/crash_enum_test.dir/crash_enum_test.cc.o.d"
  "crash_enum_test"
  "crash_enum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crash_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
