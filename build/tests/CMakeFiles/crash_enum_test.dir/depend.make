# Empty dependencies file for crash_enum_test.
# This may be replaced when dependencies are built.
