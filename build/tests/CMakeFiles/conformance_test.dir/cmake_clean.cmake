file(REMOVE_RECURSE
  "CMakeFiles/conformance_test.dir/conformance_test.cc.o"
  "CMakeFiles/conformance_test.dir/conformance_test.cc.o.d"
  "conformance_test"
  "conformance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
