file(REMOVE_RECURSE
  "CMakeFiles/dep_test.dir/dep_test.cc.o"
  "CMakeFiles/dep_test.dir/dep_test.cc.o.d"
  "dep_test"
  "dep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
