// Storage-node microbenchmarks: put/get/delete throughput across value sizes, flush
// and compaction cost, reclamation cost, and recovery time. Not a paper table —
// supporting measurements that size the substrate the validation work runs against.
//
//   $ ./build/bench/bench_kv_ops

#include <benchmark/benchmark.h>

#include <map>

#include "src/kv/shard_store.h"
#include "src/rpc/node_server.h"

using namespace ss;

namespace {

DiskGeometry BenchGeometry() {
  return DiskGeometry{.extent_count = 128, .pages_per_extent = 64, .page_size = 256};
}

Bytes MakeValue(size_t size, uint8_t tag) {
  Bytes out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(tag + i);
  }
  return out;
}

void BM_Put(benchmark::State& state) {
  const size_t value_size = static_cast<size_t>(state.range(0));
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  Bytes value = MakeValue(value_size, 1);
  ShardId id = 0;
  for (auto _ : state) {
    // Overwrite a rotating set of keys so the index stays bounded.
    auto dep = store->Put(id++ % 64, value);
    if (!dep.ok()) {
      // Disk pressure: flush, reclaim, continue.
      state.PauseTiming();
      (void)store->FlushAll();
      for (int i = 0; i < 8; ++i) {
        (void)store->ReclaimAny();
      }
      (void)store->FlushAll();
      state.ResumeTiming();
    }
    if (id % 128 == 0) {
      state.PauseTiming();
      (void)store->FlushAll();
      for (int i = 0; i < 4; ++i) {
        (void)store->ReclaimAny();
      }
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * value_size));
  // Emit the store's metric snapshot alongside the timing, so a JSON bench run
  // carries the same observability surface tests assert on.
  const MetricsSnapshot snap = store->metrics().Snapshot();
  state.counters["lsm_puts"] = static_cast<double>(snap.counter("lsm.puts"));
  state.counters["lsm_flushes"] = static_cast<double>(snap.counter("lsm.flushes"));
  state.counters["chunk_reclaims"] = static_cast<double>(snap.counter("chunk.reclaims"));
  state.counters["io_enqueued"] = static_cast<double>(snap.counter("io.enqueued"));
}
BENCHMARK(BM_Put)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(3000);

void BM_Get(benchmark::State& state) {
  const size_t value_size = static_cast<size_t>(state.range(0));
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  for (ShardId id = 0; id < 32; ++id) {
    (void)store->Put(id, MakeValue(value_size, static_cast<uint8_t>(id)));
  }
  (void)store->FlushAll();
  ShardId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Get(id++ % 32));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * value_size));
  const MetricsSnapshot snap = store->metrics().Snapshot();
  state.counters["cache_hits"] = static_cast<double>(snap.counter("cache.hits"));
  state.counters["cache_misses"] = static_cast<double>(snap.counter("cache.misses"));
  state.counters["cache_evictions"] = static_cast<double>(snap.counter("cache.evictions"));
}
BENCHMARK(BM_Get)->Arg(64)->Arg(1024)->Arg(4096)->Iterations(20000);

// Negative lookups against a deep run stack: every probed key is absent, so without
// the per-run bloom filters each Get would load every run chunk in the store. The
// `bloom_skip_rate` counter is the fraction of per-run probes the filter eliminated
// (the issue's acceptance floor is 0.90), `chunk_gets_per_lookup` the residual reads.
void BM_NegativeLookup(benchmark::State& state) {
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  // Eight un-compacted runs of 16 keys each: a worst-case probe depth for a point Get.
  // Only even ids are written; the odd probes below land inside every run's [min, max]
  // span, so the min/max prune can't help and the bloom filter does all the work.
  ShardId id = 0;
  for (int run = 0; run < 8; ++run) {
    for (int i = 0; i < 16; ++i) {
      (void)store->Put(id, MakeValue(64, static_cast<uint8_t>(id)));
      id += 2;
    }
    (void)store->FlushIndex();
  }
  (void)store->FlushAll();
  const MetricsSnapshot before = store->metrics().Snapshot();
  ShardId probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Get(probe));
    probe += 2;
    if (probe >= 256) {
      probe = 1;
    }
  }
  const MetricsSnapshot snap = store->metrics().Snapshot();
  const double hits = static_cast<double>(CounterDelta(before, snap, "lsm.bloom.hit"));
  const double misses = static_cast<double>(CounterDelta(before, snap, "lsm.bloom.miss"));
  const double false_positives =
      static_cast<double>(CounterDelta(before, snap, "lsm.bloom.false_positive"));
  const double probes = hits + misses + false_positives;
  state.counters["lsm_bloom_hit"] = hits;
  state.counters["lsm_bloom_miss"] = misses;
  state.counters["lsm_bloom_false_positive"] = false_positives;
  state.counters["bloom_skip_rate"] = probes > 0 ? misses / probes : 0.0;
  state.counters["chunk_gets_per_lookup"] =
      static_cast<double>(CounterDelta(before, snap, "chunk.gets")) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_NegativeLookup)->Iterations(20000);

void BM_FlushIndex(benchmark::State& state) {
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  ShardId id = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 16; ++i) {
      (void)store->Put(id++ % 48, MakeValue(100, 1));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store->FlushIndex());
    if (id % 480 == 0) {
      state.PauseTiming();
      (void)store->FlushAll();
      (void)store->CompactIndex();
      for (int i = 0; i < 8; ++i) {
        (void)store->ReclaimAny();
      }
      (void)store->FlushAll();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_FlushIndex)->Iterations(400);

void BM_ReclaimExtent(benchmark::State& state) {
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  for (auto _ : state) {
    state.PauseTiming();
    // Create garbage: write then delete a batch, flush.
    for (ShardId id = 0; id < 8; ++id) {
      (void)store->Put(1000 + id, MakeValue(500, 2));
    }
    for (ShardId id = 0; id < 8; ++id) {
      (void)store->Delete(1000 + id);
    }
    (void)store->FlushAll();
    auto candidates = store->chunks().ReclaimableExtents();
    state.ResumeTiming();
    if (!candidates.empty()) {
      benchmark::DoNotOptimize(store->ReclaimExtent(candidates.front()));
    }
    state.PauseTiming();
    (void)store->FlushAll();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ReclaimExtent)->Iterations(150);

void BM_Recovery(benchmark::State& state) {
  const int shard_count = static_cast<int>(state.range(0));
  InMemoryDisk disk(BenchGeometry());
  {
    auto store = std::move(ShardStore::Open(&disk).value());
    for (ShardId id = 0; id < static_cast<ShardId>(shard_count); ++id) {
      (void)store->Put(id, MakeValue(200, static_cast<uint8_t>(id)));
    }
    (void)store->FlushAll();
  }
  for (auto _ : state) {
    auto recovered = ShardStore::Open(&disk);
    benchmark::DoNotOptimize(recovered);
  }
  state.SetLabel("recovery (open over existing image)");
}
BENCHMARK(BM_Recovery)->Arg(16)->Arg(128)->Iterations(300);

// --- Batched write pipeline (group commit) -------------------------------------------
// Looped single Puts vs PutBatch over the same NodeServer config: the batch path
// shares one LSM barrier, one soft-pointer update per extent, and coalesced data IO
// units, so the per-item cost of commit + writeback drain drops. Arg = items per
// iteration; items/sec is the comparable figure.

std::unique_ptr<NodeServer> MakeBenchNode() {
  NodeServerOptions options;
  options.disk_count = 2;
  options.geometry = BenchGeometry();
  // Low enough that a 16-item batch crosses it on each disk: ApplyBatch performs its
  // own group flush, so store.batch.flushes shows up in the batch run's counters.
  options.store.lsm.memtable_flush_entries = 8;
  return std::move(NodeServer::Create(options).value());
}

void DrainNode(NodeServer& node) {
  for (int d = 0; d < node.disk_count(); ++d) {
    auto store = node.store(d);
    if (store != nullptr) {
      (void)store->PumpIo(4096);
    }
  }
}

// Node counters accumulated across the untimed node resets below (a snapshot dies
// with its node).
struct NodeBenchTotals {
  uint64_t batch_puts = 0;
  uint64_t batch_item_ok = 0;
  uint64_t batch_applies = 0;
  uint64_t batch_flushes = 0;
  uint64_t coalesced_pages = 0;
  uint64_t lsm_flushes = 0;
  uint64_t io_enqueued = 0;
  uint64_t put_ok = 0;
  // Per-stage span latency histograms ("span.<name>.ticks"), merged bucket-wise
  // across node resets. Every ended span feeds one of these via the node registry,
  // so a JSON bench run carries the per-stage latency surface of the whole path:
  // rpc.* roots, store.*, lsm.*, chunk.*, cache.*, io.* children.
  std::map<std::string, HistogramSnapshot> span_hists;

  void Harvest(NodeServer& node) {
    const MetricsSnapshot snap = node.MetricsSnapshot();
    batch_puts += snap.counter("rpc.batch.puts");
    batch_item_ok += snap.counter("rpc.batch.item_ok");
    batch_applies += snap.counter("store.batch.applies");
    batch_flushes += snap.counter("store.batch.flushes");
    coalesced_pages += snap.counter("io.coalesced_pages");
    lsm_flushes += snap.counter("lsm.flushes");
    io_enqueued += snap.counter("io.enqueued");
    put_ok += snap.counter("rpc.put.ok");
    for (const auto& [name, hist] : snap.histograms) {
      if (name.rfind("span.", 0) != 0) {
        continue;
      }
      HistogramSnapshot& acc = span_hists[name];
      if (acc.counts.empty()) {
        acc = hist;
        continue;
      }
      acc.count += hist.count;
      acc.sum += hist.sum;
      for (size_t i = 0; i < acc.counts.size() && i < hist.counts.size(); ++i) {
        acc.counts[i] += hist.counts[i];
      }
    }
  }

  void Export(benchmark::State& state) const {
    // One count/p50/p99 triple per stage histogram, flattened for the bench JSON
    // (dots in counter names read poorly in the console table).
    for (const auto& [name, hist] : span_hists) {
      std::string flat = name;
      for (char& c : flat) {
        if (c == '.') {
          c = '_';
        }
      }
      state.counters[flat + "_count"] = static_cast<double>(hist.count);
      state.counters[flat + "_p50"] = static_cast<double>(hist.ValueAtQuantile(0.5));
      state.counters[flat + "_p99"] = static_cast<double>(hist.ValueAtQuantile(0.99));
    }
    state.counters["rpc_batch_puts"] = static_cast<double>(batch_puts);
    state.counters["rpc_batch_item_ok"] = static_cast<double>(batch_item_ok);
    state.counters["rpc_put_ok"] = static_cast<double>(put_ok);
    state.counters["store_batch_applies"] = static_cast<double>(batch_applies);
    state.counters["store_batch_flushes"] = static_cast<double>(batch_flushes);
    state.counters["io_coalesced_pages"] = static_cast<double>(coalesced_pages);
    state.counters["lsm_flushes"] = static_cast<double>(lsm_flushes);
    state.counters["io_enqueued"] = static_cast<double>(io_enqueued);
  }
};

// The group-commit comparison: both variants make every put DURABLE before the
// iteration ends (dependency persistent — index entry, run chunks, and soft pointers
// flushed and drained). The looped baseline pays that commit barrier once per put,
// exactly what an unbatched caller that needs durability before acking does; PutBatch
// pays one group barrier for the whole batch. 120B values stay single-chunk/
// single-page; keys are unique within a node segment, and the node is recreated
// (untimed) every kSegmentItems committed items in BOTH variants, so neither side
// ever hits the reclaim/compaction treadmill.
constexpr size_t kSegmentItems = 512;

void BM_NodePutLooped(benchmark::State& state) {
  const size_t items_per_iter = static_cast<size_t>(state.range(0));
  Bytes value = MakeValue(120, 3);
  NodeBenchTotals totals;
  std::unique_ptr<NodeServer> node;
  ShardId id = 0;
  for (auto _ : state) {
    if (node == nullptr || id + items_per_iter > kSegmentItems) {
      state.PauseTiming();
      if (node != nullptr) {
        totals.Harvest(*node);
      }
      node = MakeBenchNode();
      id = 0;
      state.ResumeTiming();
    }
    for (size_t k = 0; k < items_per_iter; ++k) {
      benchmark::DoNotOptimize(node->Put(id, value));
      // Per-op commit barrier: flush + drain the disk that took the put.
      (void)node->store(node->DiskFor(id))->FlushAll();
      ++id;
    }
  }
  totals.Harvest(*node);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * items_per_iter));
  totals.Export(state);
}
BENCHMARK(BM_NodePutLooped)->Arg(16)->Iterations(1000);

void BM_NodePutBatch(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  Bytes value = MakeValue(120, 4);
  NodeBenchTotals totals;
  std::unique_ptr<NodeServer> node;
  ShardId id = 0;
  for (auto _ : state) {
    if (node == nullptr || id + batch_size > kSegmentItems) {
      state.PauseTiming();
      if (node != nullptr) {
        totals.Harvest(*node);
      }
      node = MakeBenchNode();
      id = 0;
      state.ResumeTiming();
    }
    std::vector<std::pair<ShardId, Bytes>> items;
    items.reserve(batch_size);
    for (size_t k = 0; k < batch_size; ++k) {
      items.emplace_back(id++, value);
    }
    benchmark::DoNotOptimize(node->PutBatch(items));
    // One group barrier for the whole batch.
    (void)node->FlushAllDisks();
  }
  totals.Harvest(*node);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * batch_size));
  totals.Export(state);
}
BENCHMARK(BM_NodePutBatch)->Arg(4)->Arg(16)->Arg(64)->Iterations(1000);

// Read path through the node, so the cache/lsm-lookup/chunk-read span histograms show
// up alongside the write-path ones above.
void BM_NodeGet(benchmark::State& state) {
  std::unique_ptr<NodeServer> node = MakeBenchNode();
  Bytes value = MakeValue(120, 6);
  for (ShardId id = 0; id < 64; ++id) {
    (void)node->Put(id, value);
  }
  (void)node->FlushAllDisks();
  NodeBenchTotals totals;
  ShardId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(node->Get(id++ % 64));
  }
  totals.Harvest(*node);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  totals.Export(state);
}
BENCHMARK(BM_NodeGet)->Iterations(20000);

void BM_NodeDeleteBatch(benchmark::State& state) {
  const size_t batch_size = static_cast<size_t>(state.range(0));
  Bytes value = MakeValue(120, 5);
  NodeBenchTotals totals;
  std::unique_ptr<NodeServer> node;
  ShardId id = 0;
  for (auto _ : state) {
    state.PauseTiming();
    if (node == nullptr || id + batch_size > kSegmentItems) {
      if (node != nullptr) {
        totals.Harvest(*node);
      }
      node = MakeBenchNode();
      id = 0;
    }
    std::vector<ShardId> ids;
    for (size_t k = 0; k < batch_size; ++k) {
      ids.push_back(id);
      (void)node->Put(id++, value);
    }
    DrainNode(*node);
    state.ResumeTiming();
    benchmark::DoNotOptimize(node->DeleteBatch(ids));
    (void)node->FlushAllDisks();
  }
  totals.Harvest(*node);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * batch_size));
  totals.Export(state);
}
BENCHMARK(BM_NodeDeleteBatch)->Arg(16)->Iterations(400);

}  // namespace

BENCHMARK_MAIN();
