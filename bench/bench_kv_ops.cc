// Storage-node microbenchmarks: put/get/delete throughput across value sizes, flush
// and compaction cost, reclamation cost, and recovery time. Not a paper table —
// supporting measurements that size the substrate the validation work runs against.
//
//   $ ./build/bench/bench_kv_ops

#include <benchmark/benchmark.h>

#include "src/kv/shard_store.h"

using namespace ss;

namespace {

DiskGeometry BenchGeometry() {
  return DiskGeometry{.extent_count = 128, .pages_per_extent = 64, .page_size = 256};
}

Bytes MakeValue(size_t size, uint8_t tag) {
  Bytes out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(tag + i);
  }
  return out;
}

void BM_Put(benchmark::State& state) {
  const size_t value_size = static_cast<size_t>(state.range(0));
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  Bytes value = MakeValue(value_size, 1);
  ShardId id = 0;
  for (auto _ : state) {
    // Overwrite a rotating set of keys so the index stays bounded.
    auto dep = store->Put(id++ % 64, value);
    if (!dep.ok()) {
      // Disk pressure: flush, reclaim, continue.
      state.PauseTiming();
      (void)store->FlushAll();
      for (int i = 0; i < 8; ++i) {
        (void)store->ReclaimAny();
      }
      (void)store->FlushAll();
      state.ResumeTiming();
    }
    if (id % 128 == 0) {
      state.PauseTiming();
      (void)store->FlushAll();
      for (int i = 0; i < 4; ++i) {
        (void)store->ReclaimAny();
      }
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * value_size));
  // Emit the store's metric snapshot alongside the timing, so a JSON bench run
  // carries the same observability surface tests assert on.
  const MetricsSnapshot snap = store->metrics().Snapshot();
  state.counters["lsm_puts"] = static_cast<double>(snap.counter("lsm.puts"));
  state.counters["lsm_flushes"] = static_cast<double>(snap.counter("lsm.flushes"));
  state.counters["chunk_reclaims"] = static_cast<double>(snap.counter("chunk.reclaims"));
  state.counters["io_enqueued"] = static_cast<double>(snap.counter("io.enqueued"));
}
BENCHMARK(BM_Put)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Iterations(3000);

void BM_Get(benchmark::State& state) {
  const size_t value_size = static_cast<size_t>(state.range(0));
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  for (ShardId id = 0; id < 32; ++id) {
    (void)store->Put(id, MakeValue(value_size, static_cast<uint8_t>(id)));
  }
  (void)store->FlushAll();
  ShardId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store->Get(id++ % 32));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * value_size));
  const MetricsSnapshot snap = store->metrics().Snapshot();
  state.counters["cache_hits"] = static_cast<double>(snap.counter("cache.hits"));
  state.counters["cache_misses"] = static_cast<double>(snap.counter("cache.misses"));
  state.counters["cache_evictions"] = static_cast<double>(snap.counter("cache.evictions"));
}
BENCHMARK(BM_Get)->Arg(64)->Arg(1024)->Arg(4096)->Iterations(20000);

void BM_FlushIndex(benchmark::State& state) {
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  ShardId id = 0;
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 16; ++i) {
      (void)store->Put(id++ % 48, MakeValue(100, 1));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store->FlushIndex());
    if (id % 480 == 0) {
      state.PauseTiming();
      (void)store->FlushAll();
      (void)store->CompactIndex();
      for (int i = 0; i < 8; ++i) {
        (void)store->ReclaimAny();
      }
      (void)store->FlushAll();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_FlushIndex)->Iterations(400);

void BM_ReclaimExtent(benchmark::State& state) {
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  for (auto _ : state) {
    state.PauseTiming();
    // Create garbage: write then delete a batch, flush.
    for (ShardId id = 0; id < 8; ++id) {
      (void)store->Put(1000 + id, MakeValue(500, 2));
    }
    for (ShardId id = 0; id < 8; ++id) {
      (void)store->Delete(1000 + id);
    }
    (void)store->FlushAll();
    auto candidates = store->chunks().ReclaimableExtents();
    state.ResumeTiming();
    if (!candidates.empty()) {
      benchmark::DoNotOptimize(store->ReclaimExtent(candidates.front()));
    }
    state.PauseTiming();
    (void)store->FlushAll();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ReclaimExtent)->Iterations(150);

void BM_Recovery(benchmark::State& state) {
  const int shard_count = static_cast<int>(state.range(0));
  InMemoryDisk disk(BenchGeometry());
  {
    auto store = std::move(ShardStore::Open(&disk).value());
    for (ShardId id = 0; id < static_cast<ShardId>(shard_count); ++id) {
      (void)store->Put(id, MakeValue(200, static_cast<uint8_t>(id)));
    }
    (void)store->FlushAll();
  }
  for (auto _ : state) {
    auto recovered = ShardStore::Open(&disk);
    benchmark::DoNotOptimize(recovered);
  }
  state.SetLabel("recovery (open over existing image)");
}
BENCHMARK(BM_Recovery)->Arg(16)->Arg(128)->Iterations(300);

}  // namespace

BENCHMARK_MAIN();
