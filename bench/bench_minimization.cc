// Section 4.3 reproduction: automatic test-case minimization statistics. The paper's
// example: issue #9's first failing sequence had 61 operations (9 crashes, 14 writes,
// 226 KiB); the minimized one had 6 operations (1 crash, 2 writes, 2 B). This bench
// runs the minimizer against a spread of seeded bugs and prints the same shape:
// original vs minimized operation counts, crashes, writes, and written bytes.
//
//   $ ./build/bench/bench_minimization [seed]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/harness/fig5.h"
#include "src/harness/kv_harness.h"
#include "src/harness/rpc_harness.h"

using namespace ss;

namespace {

struct SeqStats {
  size_t ops = 0;
  size_t crashes = 0;
  size_t writes = 0;
  size_t bytes = 0;
};

SeqStats Analyze(const std::vector<KvOp>& ops) {
  SeqStats stats;
  stats.ops = ops.size();
  for (const KvOp& op : ops) {
    if (op.kind == KvOpKind::kDirtyReboot || op.kind == KvOpKind::kReboot) {
      ++stats.crashes;
    }
    if (op.kind == KvOpKind::kPut) {
      ++stats.writes;
      stats.bytes += op.value.size();
    }
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? static_cast<uint64_t>(atoll(argv[1])) : 42;

  printf("=== Section 4.3: automatic minimization of failing sequences ===\n");
  printf("(paper example: 61 ops / 9 crashes / 14 writes / 226 KiB\n");
  printf("           ->    6 ops / 1 crash  /  2 writes / 2 B)\n\n");
  printf("%-38s %26s %26s %7s\n", "Seeded bug", "original (ops/cr/wr/bytes)",
         "minimized (ops/cr/wr/bytes)", "shrinks");
  printf("%.*s\n", 102,
         "--------------------------------------------------------------------------------"
         "-----------------------");

  const SeededBug bugs[] = {
      SeededBug::kReclaimOffByOnePageSize,
      SeededBug::kCacheNotDrainedOnReset,
      SeededBug::kShutdownMetadataSkipAfterReset,
      SeededBug::kSuperblockWrongOwnershipDep,
      SeededBug::kSoftPointerNotResetPersisted,
      SeededBug::kWriteMissingSoftPointerDep,
      SeededBug::kRecoveryWritePointerPastCrash,
      SeededBug::kReclaimUuidCollision,
  };

  double total_ratio = 0;
  int rows = 0;
  for (SeededBug bug : bugs) {
    ScopedBug scope(bug);
    KvHarnessOptions options;
    options.crashes = true;
    KvConformanceHarness harness(options);
    auto runner = harness.MakeRunner({.seed = seed, .num_cases = 5000, .max_ops = 80});
    auto failure = runner.Run();
    if (!failure.has_value()) {
      printf("%-38s not detected within budget\n",
             std::string(SeededBugName(bug)).c_str());
      continue;
    }
    const SeqStats before = Analyze(failure->original);
    const SeqStats after = Analyze(failure->minimized);
    char orig[32];
    char mini[32];
    snprintf(orig, sizeof(orig), "%zu/%zu/%zu/%zuB", before.ops, before.crashes,
             before.writes, before.bytes);
    snprintf(mini, sizeof(mini), "%zu/%zu/%zu/%zuB", after.ops, after.crashes,
             after.writes, after.bytes);
    printf("%-38s %26s %26s %7zu\n", std::string(SeededBugName(bug)).c_str(), orig, mini,
           failure->shrink_runs);
    if (before.ops > 0) {
      total_ratio += static_cast<double>(after.ops) / static_cast<double>(before.ops);
      ++rows;
    }
  }

  if (rows > 0) {
    printf("\nmean length ratio after minimization: %.2f (paper's example: %.2f)\n",
           total_ratio / rows, 6.0 / 61.0);
  }
  printf("minimization uses the paper's heuristics: remove operations (delta debugging),\n");
  printf("shrink arguments toward zero, prefer earlier alphabet variants.\n");
  return 0;
}
