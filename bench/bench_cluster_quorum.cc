// Cluster-tier benchmarks: what quorum replication costs over the single node.
//
//  * BM_QuorumPut / BM_QuorumGet — client ops/sec through a healthy N=3 R=2 W=2
//    cluster across value sizes; the per-op cost is 3 replica RPCs (2 awaited).
//  * BM_QuorumPutDegraded — the same writes with one replica crashed: every op pays
//    the unreachable contact plus a hint store, the steady state of a failed node.
//  * BM_QuorumGetWithRepair — reads against a cluster where every key has one stale
//    replica, so reads keep running into the repair path.
//  * BM_HintReplayDrain — Tick() cost of draining a hint backlog after a restart.
//  * BM_QuorumThroughLossyNet — puts at increasing drop rates: the price of the
//    retry layer absorbing a lossy network.
//
//   $ ./build/bench/bench_cluster_quorum

#include <benchmark/benchmark.h>

#include "src/cluster/coordinator.h"

using namespace ss;
using namespace ss::cluster;

namespace {

ClusterOptions BenchOptions() {
  ClusterOptions options;
  options.initial_nodes = 3;
  options.replication = 3;
  options.read_quorum = 2;
  options.write_quorum = 2;
  options.vnodes = 16;
  options.node.disk_count = 1;
  options.node.geometry = DiskGeometry{.extent_count = 128, .pages_per_extent = 64,
                                       .page_size = 256};
  return options;
}

std::unique_ptr<ClusterCoordinator> BenchCluster(const ClusterOptions& options) {
  return std::move(ClusterCoordinator::Create(options).value());
}

Bytes MakeValue(size_t size, uint8_t tag) {
  Bytes out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(tag + i);
  }
  return out;
}

constexpr int kKeySpace = 32;

// Exports the per-phase span latency distributions (virtual ticks) as bench
// counters: <phase>.p50/.p99/.p999 for every cluster phase that recorded samples.
// emit_bench_json.sh folds these into the `cluster` area's counters object.
void ExportPhaseSpanQuantiles(benchmark::State& state, const MetricsSnapshot& snap) {
  static constexpr const char* kPhases[] = {
      "cluster.fanout",       "cluster.quorum.wait",   "cluster.replica.write",
      "cluster.replica.read", "cluster.replica.repair", "cluster.read_repair",
      "cluster.hint.replay",  "cluster.hint.drain"};
  for (const char* phase : kPhases) {
    const auto it = snap.histograms.find("span." + std::string(phase) + ".ticks");
    if (it == snap.histograms.end() || it->second.count == 0) {
      continue;
    }
    const std::string prefix(phase);
    state.counters[prefix + ".p50"] =
        static_cast<double>(it->second.ValueAtQuantile(0.5));
    state.counters[prefix + ".p99"] =
        static_cast<double>(it->second.ValueAtQuantile(0.99));
    state.counters[prefix + ".p999"] =
        static_cast<double>(it->second.ValueAtQuantile(0.999));
  }
}

void BM_QuorumPut(benchmark::State& state) {
  auto cluster = BenchCluster(BenchOptions());
  const Bytes value = MakeValue(static_cast<size_t>(state.range(0)), 1);
  ShardId key = 0;
  for (auto _ : state) {
    QuorumResult r = cluster->Put(key++ % kKeySpace, value);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
  ExportPhaseSpanQuantiles(state, cluster->MetricsSnapshot());
}
BENCHMARK(BM_QuorumPut)->Arg(64)->Arg(512)->Arg(2048)->Iterations(4000);

void BM_QuorumGet(benchmark::State& state) {
  auto cluster = BenchCluster(BenchOptions());
  const Bytes value = MakeValue(static_cast<size_t>(state.range(0)), 2);
  for (ShardId key = 0; key < kKeySpace; ++key) {
    (void)cluster->Put(key, value);
  }
  ShardId key = 0;
  for (auto _ : state) {
    QuorumResult r = cluster->Get(key++ % kKeySpace);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
  ExportPhaseSpanQuantiles(state, cluster->MetricsSnapshot());
}
BENCHMARK(BM_QuorumGet)->Arg(64)->Arg(512)->Arg(2048)->Iterations(4000);

void BM_QuorumPutDegraded(benchmark::State& state) {
  auto cluster = BenchCluster(BenchOptions());
  (void)cluster->CrashNode(2);
  const Bytes value = MakeValue(512, 3);
  ShardId key = 0;
  uint64_t degraded = 0;
  for (auto _ : state) {
    QuorumResult r = cluster->Put(key++ % kKeySpace, value);
    if (r.outcome == QuorumOutcome::kDegraded) {
      ++degraded;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["degraded"] = static_cast<double>(degraded);
  state.counters["hints"] = static_cast<double>(cluster->HintCount());
  ExportPhaseSpanQuantiles(state, cluster->MetricsSnapshot());
}
BENCHMARK(BM_QuorumPutDegraded)->Iterations(4000);

void BM_QuorumGetWithRepair(benchmark::State& state) {
  auto cluster = BenchCluster(BenchOptions());
  const Bytes old_value = MakeValue(512, 4);
  const Bytes new_value = MakeValue(512, 5);
  for (ShardId key = 0; key < kKeySpace; ++key) {
    (void)cluster->Put(key, old_value);
  }
  ShardId key = 0;
  for (auto _ : state) {
    // Each round re-creates divergence (one owner misses the overwrite) and then
    // reads until the rotation hits the stale owner and repairs it.
    state.PauseTiming();
    const int lagger = cluster->OwnersOf(key % kKeySpace).back();
    cluster->net().PartitionLink(ClusterNet::kClientId, lagger);
    (void)cluster->Put(key % kKeySpace, new_value);
    cluster->net().HealLink(ClusterNet::kClientId, lagger);
    state.ResumeTiming();
    for (int i = 0; i < 3; ++i) {
      QuorumResult r = cluster->Get(key % kKeySpace);
      benchmark::DoNotOptimize(r);
    }
    ++key;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 3);
  const MetricsSnapshot repair_snap = cluster->MetricsSnapshot();
  state.counters["repairs"] = static_cast<double>(repair_snap.counter("cluster.read_repairs"));
  ExportPhaseSpanQuantiles(state, repair_snap);
}
BENCHMARK(BM_QuorumGetWithRepair)->Iterations(1000);

void BM_HintReplayDrain(benchmark::State& state) {
  const int backlog = static_cast<int>(state.range(0));
  MetricsSnapshot drained;  // per-iteration clusters: aggregate across them
  for (auto _ : state) {
    state.PauseTiming();
    auto cluster = BenchCluster(BenchOptions());
    (void)cluster->CrashNode(2);
    const Bytes value = MakeValue(256, 6);
    for (ShardId key = 0; key < static_cast<ShardId>(backlog); ++key) {
      (void)cluster->Put(key, value);
    }
    (void)cluster->RestartNode(2);
    state.ResumeTiming();
    cluster->Tick();
    benchmark::DoNotOptimize(cluster->HintCount());
    state.PauseTiming();
    drained.MergeFrom(cluster->MetricsSnapshot());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * backlog);
  ExportPhaseSpanQuantiles(state, drained);
}
BENCHMARK(BM_HintReplayDrain)->Arg(8)->Arg(32)->Arg(128)->Iterations(50);

void BM_QuorumThroughLossyNet(benchmark::State& state) {
  ClusterOptions options = BenchOptions();
  options.net.drop_rate = static_cast<double>(state.range(0)) / 1000.0;
  auto cluster = BenchCluster(options);
  const Bytes value = MakeValue(512, 7);
  ShardId key = 0;
  uint64_t failed = 0;
  for (auto _ : state) {
    QuorumResult r = cluster->Put(key++ % kKeySpace, value);
    if (!r.ok()) {
      ++failed;
    }
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  const MetricsSnapshot snap = cluster->MetricsSnapshot();
  state.counters["failed"] = static_cast<double>(failed);
  state.counters["rpc_retries"] = static_cast<double>(snap.counter("cluster.rpc.retries"));
  state.counters["hints"] = static_cast<double>(snap.counter("cluster.hints.stored"));
  ExportPhaseSpanQuantiles(state, snap);
}
BENCHMARK(BM_QuorumThroughLossyNet)->Arg(0)->Arg(10)->Arg(50)->Arg(200)->Iterations(4000);

}  // namespace

BENCHMARK_MAIN();
