// Section 4.2 ablation: argument biasing. The paper's methodology is to introduce bias
// only "where we have quantitative evidence that it is beneficial", citing read/write
// sizes close to the disk page size as the example. This bench provides that
// quantitative evidence for this code base: detection probability of the two
// page-corner bugs (#1 frame-aligned, #10 trailer-aligned) with the size/key biasing
// on vs off (uniform arguments), at equal budgets.
//
//   $ ./build/bench/bench_bias_ablation

#include <cstdio>

#include "src/faults/faults.h"
#include "src/harness/kv_harness.h"

using namespace ss;

namespace {

double DetectionRate(SeededBug bug, bool bias, bool crashes, size_t budget, int trials) {
  int detected = 0;
  for (int trial = 0; trial < trials; ++trial) {
    ScopedBug scope(bug);
    KvHarnessOptions options;
    options.bias_arguments = bias;
    options.crashes = crashes;
    KvConformanceHarness harness(options);
    PbtConfig config;
    config.seed = 500 + static_cast<uint64_t>(trial);
    config.num_cases = budget;
    config.max_ops = 80;
    config.max_shrink_runs = 0;  // detection only
    if (harness.MakeRunner(config).Run().has_value()) {
      ++detected;
    }
  }
  return static_cast<double>(detected) / trials;
}

}  // namespace

int main() {
  printf("=== Section 4.2 ablation: argument biasing on vs off ===\n");
  printf("(bias = key reuse + value sizes near page-size corners; off = uniform)\n\n");

  struct Row {
    SeededBug bug;
    const char* name;
    bool crashes;
  };
  const Row rows[] = {
      {SeededBug::kReclaimOffByOnePageSize, "#1 frame ends exactly on a page boundary",
       false},
      {SeededBug::kReclaimUuidCollision, "#10 trailing UUID spills onto the next page",
       true},
      {SeededBug::kCacheNotDrainedOnReset, "#2 (control: not size-sensitive)", false},
  };

  const int kTrials = 15;
  printf("%-46s %10s %12s %12s\n", "seeded bug", "budget", "P | bias on", "P | bias off");
  for (const Row& row : rows) {
    for (size_t budget : {200ul, 1000ul}) {
      const double with_bias = DetectionRate(row.bug, true, row.crashes, budget, kTrials);
      const double without = DetectionRate(row.bug, false, row.crashes, budget, kTrials);
      printf("%-46s %10zu %12.2f %12.2f\n", row.name, budget, with_bias, without);
    }
  }

  printf("\n(the paper's methodology: \"trust default randomness wherever possible, and\n"
         " only introduce bias where we have quantitative evidence that it is\n"
         " beneficial\" — the page-corner bugs are that evidence; the control bug is\n"
         " found either way.)\n");
  return 0;
}
