// Section 6 reproduction: stateless model checking throughput and the
// soundness-vs-scalability trade-off. Three parts:
//
//  1. google-benchmark: explored executions/second for each Figure-4-style harness and
//     scheduling strategy (the cost of exploration).
//  2. Strategy comparison on seeded bug #14 (flush/reclamation race): detection rate of
//     random walk vs PCT at equal budgets — the paper's reason for using PCT-based
//     Shuttle on large harnesses.
//  3. DFS statistics on the small buffer-pool harness — the Loom-style sound check:
//     exhaustively enumerates every schedule.
//
//   $ ./build/bench/bench_mc_interleavings

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/faults/faults.h"
#include "src/harness/concurrency.h"
#include "src/mc/mc.h"

using namespace ss;

namespace {

void BM_McFig4Random(benchmark::State& state) {
  auto body = MakeFig4IndexBody();
  uint64_t seed = 1;
  size_t execs = 0;
  uint64_t steps = 0;
  for (auto _ : state) {
    McOptions options;
    options.strategy = McOptions::Strategy::kRandom;
    options.iterations = 5;
    options.seed = seed++;
    McResult result = McExplore(body, options);
    execs += result.executions;
    steps += result.total_steps;
  }
  state.SetItemsProcessed(static_cast<int64_t>(execs));
  state.SetLabel("executions (Fig-4 harness, random)");
  state.counters["steps/exec"] =
      execs > 0 ? static_cast<double>(steps) / static_cast<double>(execs) : 0;
}
BENCHMARK(BM_McFig4Random)->Unit(benchmark::kMillisecond);

void BM_McFig4Pct(benchmark::State& state) {
  auto body = MakeFig4IndexBody();
  uint64_t seed = 1;
  size_t execs = 0;
  for (auto _ : state) {
    McOptions options;
    options.strategy = McOptions::Strategy::kPct;
    options.iterations = 5;
    options.seed = seed++;
    McResult result = McExplore(body, options);
    execs += result.executions;
  }
  state.SetItemsProcessed(static_cast<int64_t>(execs));
  state.SetLabel("executions (Fig-4 harness, PCT)");
}
BENCHMARK(BM_McFig4Pct)->Unit(benchmark::kMillisecond);

void BM_McBufferPool(benchmark::State& state) {
  auto body = MakeBufferPoolBody();
  uint64_t seed = 1;
  size_t execs = 0;
  for (auto _ : state) {
    McOptions options;
    options.strategy = McOptions::Strategy::kRandom;
    options.iterations = 10;
    options.seed = seed++;
    McResult result = McExplore(body, options);
    execs += result.executions;
  }
  state.SetItemsProcessed(static_cast<int64_t>(execs));
  state.SetLabel("executions (buffer-pool harness)");
}
BENCHMARK(BM_McBufferPool)->Unit(benchmark::kMillisecond);

void StrategyComparison() {
  printf("\n=== strategy comparison on seeded bug #14 (flush vs reclamation race) ===\n");
  printf("%-12s %-10s %-12s %s\n", "strategy", "budget", "P(detect)",
         "(12 independent seeds each)");
  const int kTrials = 12;
  for (auto [name, strategy] :
       {std::pair{"random", McOptions::Strategy::kRandom},
        std::pair{"pct", McOptions::Strategy::kPct}}) {
    for (size_t budget : {300ul, 1000ul, 3000ul}) {
      int detected = 0;
      for (int trial = 0; trial < kTrials; ++trial) {
        ScopedBug bug(SeededBug::kCompactReclaimMetadataRace);
        McOptions options;
        options.strategy = strategy;
        options.iterations = budget;
        options.seed = 100 + static_cast<uint64_t>(trial);
        if (!McExplore(MakeFlushReclaimBody(), options).ok) {
          ++detected;
        }
      }
      printf("%-12s %-10zu %-12.2f\n", name, budget,
             static_cast<double>(detected) / kTrials);
    }
  }
  printf("(PCT's probabilistic guarantee on low-depth bugs is why the paper's Shuttle\n");
  printf(" uses it for large end-to-end harnesses.)\n");
}

void DfsExhaustive() {
  printf("\n=== sound exhaustive DFS on the small buffer-pool harness ===\n");
  McOptions options;
  options.strategy = McOptions::Strategy::kDfs;
  options.iterations = 5000000;
  McResult result = McExplore(MakeBufferPoolBody(), options);
  printf("schedules explored: %zu, total scheduling steps: %llu, %s\n",
         result.executions, static_cast<unsigned long long>(result.total_steps),
         result.exhausted ? "EXHAUSTED (sound: every interleaving checked)"
                          : "budget hit before exhaustion");
  printf("(this is the Loom-style soundness/scalability trade-off: exhaustive checking\n");
  printf(" is feasible only for small correctness-critical harnesses; the Fig-4 harness\n");
  printf(" has far too many interleavings and gets randomized PCT instead.)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  StrategyComparison();
  DfsExhaustive();
  return 0;
}
