// Load generator over the disk seam (PR 8): zipfian key skew, a configurable
// read/write/scan mix, and a batch-size sweep, run against BOTH disk backends — the
// in-memory reference image and the durable file-backed log. The payload of each run
// is the per-stage span latency histograms (span.*.ticks, the PR-4 observability
// surface): p50/p99/p999 per stage land in the bench JSON, so BENCH_load.json shows
// what the fsync barrier of the file backend costs each request-plane stage.
//
//   $ ./build/bench/bench_load_gen
//   $ ./scripts/emit_bench_json.sh load        # -> BENCH_load.json
//
// Args are {backend, read_pct, write_pct, batch_size}; the scan share is the
// remainder. backend: 0 = InMemoryDisk, 1 = FileDisk (under a scratch directory that
// is recreated per node and removed at the end of the run).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/disk/file_disk.h"
#include "src/rpc/node_server.h"

using namespace ss;

namespace {

constexpr uint64_t kKeySpace = 512;     // distinct keys the generator draws from
constexpr double kZipfTheta = 0.99;     // classic YCSB skew
constexpr uint64_t kScanWindow = 16;    // keys per range scan
constexpr size_t kSegmentWrites = 384;  // node recycle period (bounds reclaim debt)

DiskGeometry LoadGeometry() {
  return DiskGeometry{.extent_count = 128, .pages_per_extent = 64, .page_size = 256};
}

// Precomputed zipfian CDF over ranks; ranks are scrambled over the key space so the
// hot keys spread across both disks instead of clustering on one shard route.
class ZipfianKeys {
 public:
  ZipfianKeys(uint64_t n, double theta) : n_(n) {
    double norm = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      norm += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    cdf_.reserve(n);
    double acc = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(static_cast<double>(i), theta) / norm;
      cdf_.push_back(acc);
    }
  }

  ShardId Next(Rng& rng) const {
    const double u = rng.NextDouble();
    const uint64_t rank = static_cast<uint64_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
    return (rank * 0x9E3779B97F4A7C15ULL) % n_;  // golden-ratio scramble
  }

 private:
  uint64_t n_;
  std::vector<double> cdf_;
};

Bytes MakeValue(size_t size, uint8_t tag) {
  Bytes out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(tag + i);
  }
  return out;
}

std::filesystem::path ScratchRoot() {
  return std::filesystem::temp_directory_path() / "bench_load_gen";
}

std::unique_ptr<NodeServer> MakeLoadNode(bool file_backend) {
  static int next_node = 0;
  NodeServerOptions options;
  options.disk_count = 2;
  options.geometry = LoadGeometry();
  options.store.lsm.memtable_flush_entries = 8;
  if (file_backend) {
    const std::filesystem::path root = ScratchRoot() / ("node-" + std::to_string(next_node++));
    std::filesystem::remove_all(root);
    std::filesystem::create_directories(root);
    options.disk_backend =
        DiskBackendConfig{.kind = DiskBackendKind::kFile, .file_root = root.string()};
  }
  return std::move(NodeServer::Create(options).value());
}

// Span histograms and op/fsync counters accumulated across the untimed node recycles
// (a metrics snapshot dies with its node).
struct LoadTotals {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t scans = 0;
  uint64_t scanned_items = 0;
  uint64_t fsyncs = 0;
  std::map<std::string, HistogramSnapshot> span_hists;

  void Harvest(NodeServer& node) {
    const MetricsSnapshot snap = node.MetricsSnapshot();
    for (const auto& [name, hist] : snap.histograms) {
      if (name.rfind("span.", 0) != 0) {
        continue;
      }
      HistogramSnapshot& acc = span_hists[name];
      if (acc.counts.empty()) {
        acc = hist;
        continue;
      }
      acc.count += hist.count;
      acc.sum += hist.sum;
      for (size_t i = 0; i < acc.counts.size() && i < hist.counts.size(); ++i) {
        acc.counts[i] += hist.counts[i];
      }
    }
    for (int d = 0; d < node.disk_count(); ++d) {
      if (auto* file = dynamic_cast<FileDisk*>(&node.disk(d))) {
        fsyncs += file->fsync_count();
      }
    }
  }

  void Export(benchmark::State& state) const {
    // p50/p99/p999 per request-plane stage, flattened for the bench JSON.
    for (const auto& [name, hist] : span_hists) {
      std::string flat = name;
      for (char& c : flat) {
        if (c == '.') {
          c = '_';
        }
      }
      state.counters[flat + "_count"] = static_cast<double>(hist.count);
      state.counters[flat + "_p50"] = static_cast<double>(hist.ValueAtQuantile(0.5));
      state.counters[flat + "_p99"] = static_cast<double>(hist.ValueAtQuantile(0.99));
      state.counters[flat + "_p999"] = static_cast<double>(hist.ValueAtQuantile(0.999));
    }
    state.counters["ops_read"] = static_cast<double>(reads);
    state.counters["ops_write"] = static_cast<double>(writes);
    state.counters["ops_scan"] = static_cast<double>(scans);
    state.counters["scan_items"] = static_cast<double>(scanned_items);
    state.counters["disk_fsyncs"] = static_cast<double>(fsyncs);
  }
};

// One mixed workload: each iteration performs one operation drawn from the
// {read, write, scan} mix against a zipfian key. Writes of batch_size > 1 go through
// PutBatch (group commit); every write settles its disk so the file backend's fsync
// barrier is on the measured path, exactly like a durability-acking server.
void BM_ZipfianMix(benchmark::State& state) {
  const bool file_backend = state.range(0) != 0;
  const uint64_t read_pct = static_cast<uint64_t>(state.range(1));
  const uint64_t write_pct = static_cast<uint64_t>(state.range(2));
  const size_t batch_size = static_cast<size_t>(state.range(3));

  const ZipfianKeys keys(kKeySpace, kZipfTheta);
  Rng rng(0x10adbeef);
  const Bytes value = MakeValue(120, 7);

  LoadTotals totals;
  std::unique_ptr<NodeServer> node;
  size_t writes_in_segment = 0;
  uint64_t items = 0;

  for (auto _ : state) {
    if (node == nullptr || writes_in_segment + batch_size > kSegmentWrites) {
      state.PauseTiming();
      if (node != nullptr) {
        totals.Harvest(*node);
      }
      node = MakeLoadNode(file_backend);
      // Preload the key space so reads and scans hit live shards.
      std::vector<std::pair<ShardId, Bytes>> preload;
      for (ShardId id = 0; id < kKeySpace; ++id) {
        preload.emplace_back(id, value);
        if (preload.size() == 64) {
          (void)node->PutBatch(preload);
          preload.clear();
        }
      }
      (void)node->PutBatch(preload);
      (void)node->FlushAllDisks();
      writes_in_segment = 0;
      state.ResumeTiming();
    }

    const uint64_t roll = rng.Below(100);
    if (roll < read_pct) {
      benchmark::DoNotOptimize(node->Get(keys.Next(rng)));
      ++totals.reads;
      ++items;
    } else if (roll < read_pct + write_pct) {
      if (batch_size <= 1) {
        benchmark::DoNotOptimize(node->Put(keys.Next(rng), value));
      } else {
        std::vector<std::pair<ShardId, Bytes>> batch;
        batch.reserve(batch_size);
        for (size_t k = 0; k < batch_size; ++k) {
          batch.emplace_back(keys.Next(rng), value);
        }
        benchmark::DoNotOptimize(node->PutBatch(batch));
      }
      (void)node->FlushAllDisks();  // commit barrier: durable before the ack
      writes_in_segment += batch_size;
      ++totals.writes;
      items += batch_size;
    } else {
      const ShardId start = keys.Next(rng);
      Result<ScanResult> scan = node->Scan(start, start + kScanWindow);
      if (scan.ok()) {
        totals.scanned_items += scan.value().items.size();
      }
      ++totals.scans;
      ++items;
    }
  }

  totals.Harvest(*node);
  state.SetItemsProcessed(static_cast<int64_t>(items));
  state.SetLabel(file_backend ? "backend:file" : "backend:inmem");
  totals.Export(state);
}

// Read-heavy, write-heavy, and scan-bearing mixes, each on both backends.
BENCHMARK(BM_ZipfianMix)
    ->Args({0, 70, 25, 1})
    ->Args({1, 70, 25, 1})
    ->Args({0, 20, 75, 1})
    ->Args({1, 20, 75, 1})
    ->Args({0, 45, 45, 1})
    ->Args({1, 45, 45, 1})
    ->Iterations(1200);

// Batch-size sweep on a pure write load: the group-commit amortization curve, and for
// the file backend the fsync-per-item curve.
BENCHMARK(BM_ZipfianMix)
    ->Args({0, 0, 100, 4})
    ->Args({0, 0, 100, 16})
    ->Args({0, 0, 100, 64})
    ->Args({1, 0, 100, 4})
    ->Args({1, 0, 100, 16})
    ->Args({1, 0, 100, 64})
    ->Iterations(200);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::error_code ec;
  std::filesystem::remove_all(ScratchRoot(), ec);  // drop the file-backend scratch trees
  return 0;
}
