// Section 5 ablation ("Block-level crash states"): coarse sampled DirtyReboots vs the
// exhaustive block-level crash-state enumerator. The paper implemented the exhaustive
// variant, found it caught nothing the sampled checks missed, and measured it
// dramatically slower — this bench reproduces that comparison on this code base.
//
//   $ ./build/bench/bench_crash_enumeration

#include <chrono>
#include <cstdio>

#include "src/faults/faults.h"
#include "src/harness/crash_enum.h"

using namespace ss;

namespace {

KvOp Put(ShardId id, size_t size, uint8_t tag) {
  KvOp op;
  op.kind = KvOpKind::kPut;
  op.id = id;
  op.value = Bytes(size, tag);
  return op;
}

KvOp Simple(KvOpKind kind, uint32_t arg = 0) {
  KvOp op;
  op.kind = kind;
  op.arg = arg;
  return op;
}

std::vector<KvOp> Workload(int puts) {
  // Larger values spread the chunks over several extents, which multiplies the number
  // of independent writeback domains — and with it the crash-state count.
  std::vector<KvOp> ops;
  for (int i = 0; i < puts; ++i) {
    ops.push_back(Put(static_cast<ShardId>(i), 500 + 450 * static_cast<size_t>(i),
                      static_cast<uint8_t>(i)));
    if (i == puts / 2) {
      ops.push_back(Simple(KvOpKind::kFlushIndex));
    }
  }
  ops.push_back(Simple(KvOpKind::kFlushIndex));
  return ops;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// The sampled baseline: N random crash states of the same workload, via the regular
// section-5 harness machinery (one DirtyReboot per run).
bool SampledDetects(const std::vector<KvOp>& workload, size_t samples, size_t* runs) {
  KvHarnessOptions options;
  KvConformanceHarness harness(options);
  for (size_t i = 0; i < samples; ++i) {
    std::vector<KvOp> ops = workload;
    KvOp crash;
    crash.kind = KvOpKind::kDirtyReboot;
    crash.arg = static_cast<uint32_t>(0x9e3779b9u * (i + 1));
    ops.push_back(crash);
    ++*runs;
    if (harness.Run(ops).has_value()) {
      return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  printf("=== Section 5 ablation: sampled DirtyReboot vs exhaustive block-level"
         " enumeration ===\n\n");

  for (int puts : {1, 2, 4, 6}) {
    const std::vector<KvOp> workload = Workload(puts);
    CrashEnumOptions options;
    options.max_states = 120000;

    auto start = std::chrono::steady_clock::now();
    CrashEnumResult exhaustive = EnumerateCrashStates(workload, options);
    const double enum_seconds = Seconds(start);

    start = std::chrono::steady_clock::now();
    size_t sampled_runs = 0;
    const bool sampled_found = SampledDetects(workload, 100, &sampled_runs);
    const double sample_seconds = Seconds(start);

    printf("workload: %d put(s) + index flush\n", puts);
    printf("  exhaustive: %8zu crash states, %7.2f s  (%s, violations: %s)\n",
           exhaustive.states_explored, enum_seconds,
           exhaustive.exhausted ? "exhausted" : "cap hit",
           exhaustive.violation.has_value() ? exhaustive.violation->c_str() : "none");
    printf("  sampled:    %8zu random crashes, %5.2f s  (violations: %s)\n\n",
           sampled_runs, sample_seconds, sampled_found ? "FOUND" : "none");
  }

  // Detection power check: both approaches catch seeded crash bug #8; the exhaustive
  // one finds nothing extra on correct code (the paper's conclusion for keeping the
  // coarse approach as the default).
  printf("detection check with seeded bug #8 (missing soft-pointer dependency):\n");
  {
    ScopedBug bug(SeededBug::kWriteMissingSoftPointerDep);
    const std::vector<KvOp> workload = Workload(1);
    CrashEnumOptions options;
    options.max_states = 120000;
    auto start = std::chrono::steady_clock::now();
    CrashEnumResult exhaustive = EnumerateCrashStates(workload, options);
    printf("  exhaustive: %s after %zu states (%.2f s)\n",
           exhaustive.violation.has_value() ? "DETECTED" : "missed",
           exhaustive.states_explored, Seconds(start));
    start = std::chrono::steady_clock::now();
    size_t sampled_runs = 0;
    const bool sampled_found = SampledDetects(workload, 100, &sampled_runs);
    printf("  sampled:    %s after %zu random crashes (%.2f s)\n",
           sampled_found ? "DETECTED" : "missed", sampled_runs, Seconds(start));
  }

  printf("\n(paper: \"this exhaustive approach has not found additional bugs and is\n"
         " dramatically slower to test, so we do not use it by default\" — the state\n"
         " count grows exponentially with pending IO while random sampling covers the\n"
         " interesting states almost immediately.)\n");
  return 0;
}
