// Section 4.2 ("pay-as-you-go") reproduction. Two parts:
//
//  1. google-benchmark microbenchmarks for the property-based checking throughput
//     (sequences/second) of each harness configuration — the cost side of "we routinely
//     run tens of millions of random test sequences before every deployment".
//  2. A detection-probability-vs-budget sweep: for a seeded bug, the probability that a
//     run of N random cases finds it, across seeds — the benefit side (more budget,
//     more bugs).
//
//   $ ./build/bench/bench_pbt_throughput

#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/faults/faults.h"
#include "src/harness/component_harness.h"
#include "src/harness/kv_harness.h"

using namespace ss;

namespace {

void BM_KvConformanceCases(benchmark::State& state) {
  KvHarnessOptions options;
  KvConformanceHarness harness(options);
  uint64_t seed = 1;
  size_t cases = 0;
  for (auto _ : state) {
    auto runner = harness.MakeRunner({.seed = seed++, .num_cases = 20});
    benchmark::DoNotOptimize(runner.Run());
    cases += runner.stats().cases_run;
  }
  state.SetItemsProcessed(static_cast<int64_t>(cases));
  state.SetLabel("sequences (sec-4 conformance)");
}
BENCHMARK(BM_KvConformanceCases)->Unit(benchmark::kMillisecond);

void BM_KvCrashCases(benchmark::State& state) {
  KvHarnessOptions options;
  options.crashes = true;
  KvConformanceHarness harness(options);
  uint64_t seed = 1;
  size_t cases = 0;
  for (auto _ : state) {
    auto runner = harness.MakeRunner({.seed = seed++, .num_cases = 20, .max_ops = 80});
    benchmark::DoNotOptimize(runner.Run());
    cases += runner.stats().cases_run;
  }
  state.SetItemsProcessed(static_cast<int64_t>(cases));
  state.SetLabel("sequences (sec-5 crash consistency)");
}
BENCHMARK(BM_KvCrashCases)->Unit(benchmark::kMillisecond);

void BM_KvFailureInjectionCases(benchmark::State& state) {
  KvHarnessOptions options;
  options.failure_injection = true;
  KvConformanceHarness harness(options);
  uint64_t seed = 1;
  size_t cases = 0;
  for (auto _ : state) {
    auto runner = harness.MakeRunner({.seed = seed++, .num_cases = 20});
    benchmark::DoNotOptimize(runner.Run());
    cases += runner.stats().cases_run;
  }
  state.SetItemsProcessed(static_cast<int64_t>(cases));
  state.SetLabel("sequences (sec-4.4 failure injection)");
}
BENCHMARK(BM_KvFailureInjectionCases)->Unit(benchmark::kMillisecond);

void BM_IndexComponentCases(benchmark::State& state) {
  IndexConformanceHarness harness{IndexHarnessOptions{}};
  uint64_t seed = 1;
  size_t cases = 0;
  for (auto _ : state) {
    auto runner = harness.MakeRunner({.seed = seed++, .num_cases = 20});
    benchmark::DoNotOptimize(runner.Run());
    cases += runner.stats().cases_run;
  }
  state.SetItemsProcessed(static_cast<int64_t>(cases));
  state.SetLabel("sequences (Fig-3 index harness)");
}
BENCHMARK(BM_IndexComponentCases)->Unit(benchmark::kMillisecond);

void DetectionProbabilitySweep() {
  printf("\n=== pay-as-you-go: detection probability vs budget (seeded bug #2) ===\n");
  printf("%-10s %-12s %s\n", "budget", "P(detect)", "(40 independent seeds each)");
  const size_t budgets[] = {10, 30, 100, 300, 1000};
  for (size_t budget : budgets) {
    int detected = 0;
    const int kTrials = 40;
    for (int trial = 0; trial < kTrials; ++trial) {
      ScopedBug bug(SeededBug::kCacheNotDrainedOnReset);
      KvConformanceHarness harness{KvHarnessOptions{}};
      PbtConfig config;
      config.seed = 1000 + static_cast<uint64_t>(trial);
      config.num_cases = budget;
      config.max_shrink_runs = 0;  // detection only
      auto runner = harness.MakeRunner(config);
      if (runner.Run().has_value()) {
        ++detected;
      }
    }
    printf("%-10zu %-12.2f\n", budget, static_cast<double>(detected) / kTrials);
  }
  printf("(the paper's claim: checks are pay-as-you-go — run them longer to increase\n");
  printf(" the chance of finding issues, locally during development or at scale.)\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  DetectionProbabilitySweep();
  return 0;
}
