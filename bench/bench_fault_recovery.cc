// Disk-failure-domain benchmarks: what the retry/health machinery costs and buys.
//
//  * BM_GetThroughFaultStorm / BM_PutThroughFaultStorm — ops/sec through a
//    probabilistic transient-fault storm (SetFailureRates) at increasing fault rates;
//    rate 0 is the baseline, so the delta is the retry layer's overhead plus the cost
//    of absorbed faults.
//  * BM_RetryBudgetExhaustion — cost of a surfaced failure (burst longer than the
//    retry budget), the worst case per operation.
//  * BM_EvacuateDisk — time to drain a degraded disk onto healthy peers, across
//    shard-count populations (the repair-time side of the health state machine).
//  * BM_CrashRecoverDisk — time for a whole-disk crash + recovery + routing
//    reconciliation.
//
//   $ ./build/bench/bench_fault_recovery

#include <benchmark/benchmark.h>

#include "src/rpc/node_server.h"

using namespace ss;

namespace {

DiskGeometry BenchGeometry() {
  return DiskGeometry{.extent_count = 128, .pages_per_extent = 64, .page_size = 256};
}

Bytes MakeValue(size_t size, uint8_t tag) {
  Bytes out(size);
  for (size_t i = 0; i < size; ++i) {
    out[i] = static_cast<uint8_t>(tag + i);
  }
  return out;
}

// Fault rate is passed as range(0) in tenths of a percent (0, 10 = 1%, 50 = 5%).
double RateOf(benchmark::State& state) { return static_cast<double>(state.range(0)) / 1000.0; }

void BM_GetThroughFaultStorm(benchmark::State& state) {
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  for (ShardId id = 0; id < 32; ++id) {
    (void)store->Put(id, MakeValue(512, static_cast<uint8_t>(id)));
  }
  (void)store->FlushAll();
  disk.fault_injector().SetFailureRates(RateOf(state), 0.0, /*seed=*/7);
  ShardId id = 0;
  uint64_t surfaced = 0;
  for (auto _ : state) {
    auto got = store->Get(id++ % 32);
    if (!got.ok()) {
      ++surfaced;
    }
    benchmark::DoNotOptimize(got);
  }
  disk.fault_injector().Clear();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  // Read from the metric registry rather than ad-hoc struct fields, so the bench
  // reports the same numbers an operator dashboard would.
  const MetricsSnapshot snap = store->metrics().Snapshot();
  state.counters["surfaced_errors"] = static_cast<double>(surfaced);
  state.counters["absorbed_faults"] = static_cast<double>(snap.counter("extent.retry.absorbed"));
  state.counters["retry_attempts"] = static_cast<double>(snap.counter("extent.retry.attempts"));
  state.counters["cache_hits"] = static_cast<double>(snap.counter("cache.hits"));
}
BENCHMARK(BM_GetThroughFaultStorm)->Arg(0)->Arg(10)->Arg(50)->Arg(200)->Iterations(20000);

void BM_PutThroughFaultStorm(benchmark::State& state) {
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  disk.fault_injector().SetFailureRates(0.0, RateOf(state), /*seed=*/11);
  Bytes value = MakeValue(512, 3);
  ShardId id = 0;
  uint64_t surfaced = 0;
  for (auto _ : state) {
    auto dep = store->Put(id++ % 64, value);
    if (!dep.ok()) {
      if (dep.code() == StatusCode::kResourceExhausted) {
        state.PauseTiming();
        (void)store->FlushAll();
        for (int i = 0; i < 8; ++i) {
          (void)store->ReclaimAny();
        }
        (void)store->FlushAll();
        state.ResumeTiming();
      } else {
        ++surfaced;
      }
    }
  }
  disk.fault_injector().Clear();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  const MetricsSnapshot snap = store->metrics().Snapshot();
  state.counters["surfaced_errors"] = static_cast<double>(surfaced);
  state.counters["absorbed_faults"] = static_cast<double>(snap.counter("extent.retry.absorbed"));
  state.counters["io_enqueued"] = static_cast<double>(snap.counter("io.enqueued"));
}
BENCHMARK(BM_PutThroughFaultStorm)->Arg(0)->Arg(10)->Arg(50)->Arg(200)->Iterations(3000);

void BM_RetryBudgetExhaustion(benchmark::State& state) {
  InMemoryDisk disk(BenchGeometry());
  auto store = std::move(ShardStore::Open(&disk).value());
  (void)store->Put(1, MakeValue(512, 1));
  const uint32_t budget = ShardStoreOptions{}.retry.max_attempts;
  for (auto _ : state) {
    state.PauseTiming();
    // Arm a burst guaranteed to outlast the budget on every data extent.
    for (ExtentId e = 1; e < BenchGeometry().extent_count; ++e) {
      disk.fault_injector().FailReadTimes(e, budget);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store->Get(1));
    state.PauseTiming();
    disk.fault_injector().Clear();
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("surfaced kIoError per op (budget " + std::to_string(budget) + ")");
}
BENCHMARK(BM_RetryBudgetExhaustion)->Iterations(2000);

void BM_EvacuateDisk(benchmark::State& state) {
  const int shard_count = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    NodeServerOptions options;
    options.disk_count = 4;
    options.geometry = BenchGeometry();
    auto node = std::move(NodeServer::Create(options).value());
    int populated = 0;
    for (ShardId id = 0; populated < shard_count; ++id) {
      if (node->DiskFor(id) == 0) {
        (void)node->Put(id, MakeValue(256, static_cast<uint8_t>(id)));
        ++populated;
      }
    }
    (void)node->MarkDiskDegraded(0);
    const MetricsSnapshot before = node->MetricsSnapshot();
    state.ResumeTiming();
    benchmark::DoNotOptimize(node->EvacuateDisk(0));
    state.PauseTiming();
    const MetricsSnapshot after = node->MetricsSnapshot();
    // Metric-delta check: one evacuation, every populated shard migrated.
    if (CounterDelta(before, after, "rpc.evacuations") != 1 ||
        CounterDelta(before, after, "rpc.migrations") != static_cast<uint64_t>(shard_count)) {
      state.SkipWithError("evacuation metric deltas disagree with the populated shard count");
    }
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * shard_count));
  state.SetLabel("shards migrated off a degraded disk");
}
BENCHMARK(BM_EvacuateDisk)->Arg(4)->Arg(16)->Arg(48)->Unit(benchmark::kMillisecond)->Iterations(20);

void BM_CrashRecoverDisk(benchmark::State& state) {
  NodeServerOptions options;
  options.disk_count = 2;
  options.geometry = BenchGeometry();
  auto node = std::move(NodeServer::Create(options).value());
  int populated = 0;
  for (ShardId id = 0; populated < 32; ++id) {
    if (node->DiskFor(id) == 0) {
      (void)node->Put(id, MakeValue(512, static_cast<uint8_t>(id)));
      ++populated;
    }
  }
  (void)node->FlushAllDisks();
  uint64_t seed = 1;
  const MetricsSnapshot before = node->MetricsSnapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(node->CrashAndRecoverDisk(0, seed++));
  }
  const MetricsSnapshot after = node->MetricsSnapshot();
  if (CounterDelta(before, after, "rpc.crash_recoveries") !=
      static_cast<uint64_t>(state.iterations())) {
    state.SkipWithError("crash-recovery metric delta disagrees with iteration count");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("whole-disk crash + recovery + routing reconciliation");
}
BENCHMARK(BM_CrashRecoverDisk)->Unit(benchmark::kMillisecond)->Iterations(200);

}  // namespace

BENCHMARK_MAIN();
