// Figure 6 reproduction: lines of code for implementation and validation artifacts.
// Walks this repository's sources and prints the same category breakdown the paper
// reports for ShardStore (implementation / unit+integration tests / reference models /
// functional-correctness checks / crash-consistency checks / concurrency checks).
//
// The source root is baked in at configure time (SS_SOURCE_DIR); pass a path to
// override:  $ ./build/bench/bench_fig6_loc [repo_root]

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace fs = std::filesystem;

#ifndef SS_SOURCE_DIR
#define SS_SOURCE_DIR "."
#endif

namespace {

size_t CountLines(const fs::path& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  return lines;
}

bool IsSource(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp";
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(SS_SOURCE_DIR);
  if (!fs::exists(root / "src")) {
    printf("source root %s has no src/ directory\n", root.string().c_str());
    return 1;
  }

  // Category rules, mirroring the paper's Figure 6 rows.
  struct Rule {
    const char* category;
    std::vector<std::string> prefixes;  // repo-relative path prefixes
  };
  const std::vector<Rule> rules = {
      // Validation artifacts first (more specific prefixes win by order).
      {"Reference models (sec 3.2)", {"src/model"}},
      {"Functional correctness checks (sec 4)",
       {"src/pbt", "src/harness/kv_harness", "src/harness/component_harness",
        "src/harness/rpc_harness", "src/harness/fig5", "tests/conformance_test",
        "tests/fig5_test", "tests/pbt_test"}},
      {"Crash consistency checks (sec 5)", {"tests/crash_test"}},
      {"Concurrency checks (sec 6)",
       {"src/mc", "src/harness/concurrency", "tests/concurrency_test", "tests/mc_test"}},
      {"Unit & integration tests", {"tests/"}},
      {"Implementation", {"src/", "examples/", "bench/"}},
  };

  std::map<std::string, size_t> totals;
  std::map<std::string, size_t> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() || !IsSource(entry.path())) {
      continue;
    }
    const std::string rel = fs::relative(entry.path(), root).generic_string();
    if (rel.rfind("build", 0) == 0) {
      continue;
    }
    for (const Rule& rule : rules) {
      bool matched = false;
      for (const std::string& prefix : rule.prefixes) {
        if (rel.rfind(prefix, 0) == 0) {
          matched = true;
          break;
        }
      }
      if (matched) {
        totals[rule.category] += CountLines(entry.path());
        files[rule.category] += 1;
        break;
      }
    }
  }

  printf("=== Figure 6: lines of code (this reproduction) ===\n\n");
  printf("%-42s %8s %7s\n", "Component", "Lines", "Files");
  printf("------------------------------------------------------------\n");
  const std::vector<const char*> order = {
      "Implementation",
      "Unit & integration tests",
      "Reference models (sec 3.2)",
      "Functional correctness checks (sec 4)",
      "Crash consistency checks (sec 5)",
      "Concurrency checks (sec 6)",
  };
  size_t total = 0;
  for (const char* category : order) {
    printf("%-42s %8zu %7zu\n", category, totals[category], files[category]);
    total += totals[category];
  }
  printf("------------------------------------------------------------\n");
  printf("%-42s %8zu\n\n", "Total", total);

  const size_t validation = totals["Reference models (sec 3.2)"] +
                            totals["Functional correctness checks (sec 4)"] +
                            totals["Crash consistency checks (sec 5)"] +
                            totals["Concurrency checks (sec 6)"];
  const size_t implementation = totals["Implementation"];
  if (implementation > 0 && total > 0) {
    printf("validation artifacts: %.0f%% of the code base, %.0f%% of implementation size\n",
           100.0 * static_cast<double>(validation) / static_cast<double>(total),
           100.0 * static_cast<double>(validation) / static_cast<double>(implementation));
    printf("(paper: 13%% of code base, 20%% of implementation — far below the 3-10x\n");
    printf(" overhead of full verification)\n");
  }
  return 0;
}
