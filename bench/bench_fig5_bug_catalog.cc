// Figure 5 reproduction: the headline result. Seeds each of the paper's 16 catalogued
// issues into the implementation (or its reference models), runs the checker class the
// paper credits with preventing it, and prints the resulting table: component,
// description, checker, detection status, effort (cases/executions until detection),
// and minimization statistics.
//
//   $ ./build/bench/bench_fig5_bug_catalog [--pbt-cases N] [--mc-iters N] [--seed N]

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/harness/fig5.h"

using namespace ss;

int main(int argc, char** argv) {
  Fig5Budget budget;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (strcmp(argv[i], "--pbt-cases") == 0) {
      budget.pbt_cases = static_cast<size_t>(atoll(argv[i + 1]));
    } else if (strcmp(argv[i], "--mc-iters") == 0) {
      budget.mc_iterations = static_cast<size_t>(atoll(argv[i + 1]));
    } else if (strcmp(argv[i], "--seed") == 0) {
      budget.seed = static_cast<uint64_t>(atoll(argv[i + 1]));
    }
  }

  printf("=== Figure 5: issues prevented from reaching production ===\n");
  printf("(each issue seeded into the implementation, then hunted by its checker;\n");
  printf(" budget: %zu PBT cases / %zu MC executions per issue, seed %llu)\n\n",
         budget.pbt_cases, budget.mc_iterations,
         static_cast<unsigned long long>(budget.seed));

  printf("%-4s %-13s %-44s %-9s %9s %11s %6s\n", "ID", "Component", "Checker", "Result",
         "effort", "orig->min", "sec");
  printf("%.*s\n", 110,
         "--------------------------------------------------------------------------------"
         "------------------------------");

  int detected = 0;
  double total_seconds = 0;
  for (int b = 0; b < kSeededBugCount; ++b) {
    const auto bug = static_cast<SeededBug>(b);
    const auto start = std::chrono::steady_clock::now();
    Fig5Detection d = DetectSeededBug(bug, budget);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    total_seconds += seconds;
    detected += d.detected ? 1 : 0;

    char shrink[32] = "-";
    if (d.original_ops > 0) {
      snprintf(shrink, sizeof(shrink), "%zu->%zu", d.original_ops, d.minimized_ops);
    }
    printf("%-4.*s %-13s %-44s %-9s %9zu %11s %6.2f\n", 3, SeededBugName(bug).data(),
           std::string(SeededBugComponent(bug)).c_str(), d.checker.c_str(),
           d.detected ? "DETECTED" : "MISSED", d.cases_or_execs, shrink, seconds);
    printf("     %s\n", std::string(SeededBugDescription(bug)).c_str());
  }

  printf("\n%d/%d issues detected in %.1f s total.\n", detected, kSeededBugCount,
         total_seconds);
  printf("(paper: all 16 were prevented from reaching production; detection effort is\n");
  printf(" pay-as-you-go — raise the budget flags for a deeper hunt.)\n");
  return detected == kSeededBugCount ? 0 : 1;
}
